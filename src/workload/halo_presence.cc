#include "src/workload/halo_presence.h"

#include <algorithm>
#include <utility>

#include "src/actor/actor.h"
#include "src/common/check.h"
#include "src/workload/fanout_counter.h"

namespace actop {

namespace {

// A player: knows its current game; answers status queries by asking the
// game, and answers the game's broadcast updates directly.
class PlayerActor : public Actor {
 public:
  PlayerActor(ActorId id, std::shared_ptr<HaloState> state, const HaloWorkloadConfig* config)
      : id_(id), state_(std::move(state)), config_(config) {}

  void OnCall(CallContext& ctx) override {
    switch (ctx.method()) {
      case kGetStatus: {
        if (current_game_ == kNoActor) {
          ctx.Reply(64);  // idle player: no game to consult
          return;
        }
        // Capture the context by raw call through the runtime-held pointer;
        // the runtime keeps the context alive until Reply.
        CallContext* call = &ctx;
        ctx.Call(current_game_, kGameStatus, config_->request_bytes,
                 [call, this](const Response& response) {
                   call->Reply(response.failed ? 16 : config_->status_bytes);
                 });
        return;
      }
      case kSetGame: {
        const uint64_t game_key = ctx.app_data();
        current_game_ =
            game_key == 0 ? kNoActor : MakeActorId(kGameActorType, game_key);
        ctx.Reply(16);
        return;
      }
      case kUpdate: {
        state_->updates.fetch_add(1, std::memory_order_relaxed);
        ctx.Reply(32);
        return;
      }
      default:
        ctx.Reply(16);
    }
  }

  ActorId current_game() const { return current_game_; }

 private:
  ActorId id_;
  std::shared_ptr<HaloState> state_;
  const HaloWorkloadConfig* config_;
  ActorId current_game_ = kNoActor;
};

// A game: holds the member roster; fans status requests out to all members
// and replies after every member responded (the 1 + 8 + 8 + 1 pattern).
class GameActor : public Actor {
 public:
  GameActor(ActorId id, std::shared_ptr<HaloState> state, const HaloWorkloadConfig* config)
      : id_(id), state_(std::move(state)), config_(config) {}

  void OnCall(CallContext& ctx) override {
    switch (ctx.method()) {
      case kGameStatus: {
        if (members_.empty()) {
          ctx.Reply(config_->status_bytes);
          return;
        }
        auto remaining = MakeFanoutCounter(static_cast<int>(members_.size()));
        CallContext* call = &ctx;
        for (const ActorId member : members_) {
          ctx.Call(member, kUpdate, config_->update_bytes,
                   [call, remaining, this](const Response&) {
                     if (--*remaining == 0) {
                       state_->broadcasts.fetch_add(1, std::memory_order_relaxed);
                       call->Reply(config_->status_bytes);
                     }
                   });
        }
        return;
      }
      case kStartGame: {
        const uint64_t game_key = ActorKeyOf(ctx.self());
        state_->ReadRoster(game_key, &members_);
        auto remaining = MakeFanoutCounter(static_cast<int>(members_.size()));
        CallContext* call = &ctx;
        for (const ActorId member : members_) {
          ctx.CallWithData(member, kSetGame, game_key, 64,
                           [call, remaining](const Response&) {
                             if (--*remaining == 0) {
                               call->Reply(16);
                             }
                           });
        }
        return;
      }
      case kEndGame: {
        if (members_.empty()) {
          ctx.Reply(16);
          return;
        }
        auto remaining = MakeFanoutCounter(static_cast<int>(members_.size()));
        members_.clear();
        const uint64_t game_key = ActorKeyOf(ctx.self());
        state_->TakeRoster(game_key, &roster_scratch_);
        CallContext* call = &ctx;
        for (const ActorId member : roster_scratch_) {
          ctx.CallWithData(member, kSetGame, 0, 64, [call, remaining](const Response&) {
            if (--*remaining == 0) {
              call->Reply(16);
            }
          });
        }
        return;
      }
      default:
        ctx.Reply(16);
    }
  }

 private:
  ActorId id_;
  std::shared_ptr<HaloState> state_;
  const HaloWorkloadConfig* config_;
  std::vector<ActorId> members_;
  // EndGame fan-out target list, reused across games hosted by this actor.
  std::vector<ActorId> roster_scratch_;
};

}  // namespace

void HaloState::PutRoster(uint64_t key, const std::vector<ActorId>& members) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t slot;
  if (roster_free_ != kNilSlot) {
    slot = roster_free_;
    roster_free_ = roster_slots_[slot].free_next;
  } else {
    roster_slots_.emplace_back();
    slot = static_cast<uint32_t>(roster_slots_.size() - 1);
  }
  roster_slots_[slot].members.assign(members.begin(), members.end());
  roster_index_.Insert(key, slot);
}

void HaloState::ReadRoster(uint64_t key, std::vector<ActorId>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t* slot = roster_index_.Find(key);
  ACTOP_CHECK(slot != nullptr);
  const RosterSlot& s = roster_slots_[*slot];
  out->assign(s.members.begin(), s.members.end());
}

void HaloState::TakeRoster(uint64_t key, std::vector<ActorId>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t* found = roster_index_.Find(key);
  ACTOP_CHECK(found != nullptr);
  const uint32_t slot = *found;
  RosterSlot& s = roster_slots_[slot];
  // Swap instead of move: the caller's old buffer stays with the slot, so
  // both sides of the take recycle their storage.
  std::swap(*out, s.members);
  s.members.clear();
  s.free_next = roster_free_;
  roster_free_ = slot;
  roster_index_.Erase(key);
}

HaloWorkload::HaloWorkload(Cluster* cluster, HaloWorkloadConfig config)
    : cluster_(cluster),
      config_(config),
      rng_(config.seed),
      state_(std::make_shared<HaloState>()),
      clients_(&cluster->sim(), cluster,
               ClientConfig{.request_rate = config.request_rate,
                            .request_bytes = config.request_bytes,
                            .timeout = config.client_timeout,
                            .seed = config.seed ^ 0x1234},
               [this](Rng& rng, ActorId* target, MethodId* method) {
                 return PickTarget(rng, target, method);
               }),
      driver_(&cluster->sim(), cluster, config.seed ^ 0x5678) {
  ACTOP_CHECK(cluster != nullptr);
  ACTOP_CHECK(config_.players_per_game >= 2);

  CostModel player_costs;
  player_costs.handler_compute = config_.player_compute;
  cluster_->RegisterActorType(
      kPlayerActorType,
      [this](ActorId id) { return std::make_unique<PlayerActor>(id, state_, &config_); },
      player_costs);

  CostModel game_costs;
  game_costs.handler_compute = config_.game_compute;
  cluster_->RegisterActorType(
      kGameActorType,
      [this](ActorId id) { return std::make_unique<GameActor>(id, state_, &config_); },
      game_costs);
}

HaloWorkload::~HaloWorkload() = default;

bool HaloWorkload::PickTarget(Rng& rng, ActorId* target, MethodId* method) {
  if (in_game_players_.empty()) {
    return false;
  }
  *target = in_game_players_[rng.NextBounded(in_game_players_.size())];
  *method = kGetStatus;
  return true;
}

SimDuration HaloWorkload::ScaledUniform(SimDuration lo, SimDuration hi) {
  const SimDuration raw = rng_.NextUniformDuration(lo, hi);
  return static_cast<SimDuration>(static_cast<double>(raw) * config_.time_scale);
}

void HaloWorkload::AddNewPlayer() {
  const ActorId player = MakeActorId(kPlayerActorType, next_player_key_++);
  PlayerRec rec;
  rec.games_left =
      static_cast<int32_t>(rng_.NextInt(config_.min_games_per_player, config_.max_games_per_player));
  players_.Insert(player, rec);
  idle_pool_.push_back(player);
}

void HaloWorkload::Start() {
  ACTOP_CHECK(!running_);
  running_ = true;
  // Size the player tables up front: at Halo scale (10M players) letting the
  // map grow by doubling would briefly hold two copies of a multi-hundred-MB
  // table and copy every record log(n) times during the fill below.
  players_.Reserve(static_cast<size_t>(config_.target_players));
  idle_pool_.reserve(static_cast<size_t>(config_.target_players));
  in_game_players_.reserve(static_cast<size_t>(config_.target_players));
  for (int i = 0; i < config_.target_players; i++) {
    AddNewPlayer();
  }
  TryFormGames();
  first_generation_ = false;
}

void HaloWorkload::Stop() {
  running_ = false;
  clients_.Stop();
}

void HaloWorkload::TryFormGames() {
  if (!running_) {
    return;
  }
  // Keep roughly idle_pool_target players waiting; everyone else plays.
  while (static_cast<int>(idle_pool_.size()) >=
         std::max(config_.players_per_game, config_.idle_pool_target)) {
    members_scratch_.clear();
    members_scratch_.reserve(static_cast<size_t>(config_.players_per_game));
    for (int i = 0; i < config_.players_per_game; i++) {
      const size_t pick = idle_pool_.size() == 1
                              ? 0
                              : static_cast<size_t>(rng_.NextBounded(idle_pool_.size()));
      members_scratch_.push_back(idle_pool_[pick]);
      idle_pool_[pick] = idle_pool_.back();
      idle_pool_.pop_back();
    }
    StartGame(members_scratch_);
  }
  // Start the client load once the first games exist.
  if (!in_game_players_.empty() && !started_clients_ && !config_.external_clients) {
    started_clients_ = true;
    clients_.Start();
  }
}

void HaloWorkload::StartGame(const std::vector<ActorId>& members) {
  const uint64_t game_key = next_game_key_++;
  const ActorId game = MakeActorId(kGameActorType, game_key);
  state_->PutRoster(game_key, members);
  for (const ActorId member : members) {
    PlayerRec* rec = players_.Find(member);
    ACTOP_CHECK(rec != nullptr);
    rec->slot = static_cast<uint32_t>(in_game_players_.size());
    in_game_players_.push_back(member);
  }
  active_games_++;
  games_started_++;
  driver_.Call(game, kStartGame, game_key, 256, nullptr);
  SimDuration duration = ScaledUniform(config_.game_duration_min, config_.game_duration_max);
  if (first_generation_) {
    // The initial population joins a system already in operation: treat the
    // first generation of games as being at a uniformly random point of
    // their lifetime, so game endings are desynchronized from the start.
    duration = rng_.NextUniformDuration(Seconds(1), std::max<SimDuration>(duration, Seconds(2)));
  }
  // The timer re-reads the roster from state_->rosters at game end instead
  // of owning a copy: the entry is immutable between here and the EndGame
  // turn that erases it, and a [this, game_key] capture stays inline in the
  // event engine.
  cluster_->sim().ScheduleAfter(duration, [this, game_key] { FinishGame(game_key); });
}

void HaloWorkload::FinishGame(uint64_t game_key) {
  if (!running_) {
    return;
  }
  // Copy the roster into reused scratch before issuing EndGame: the game
  // actor's EndGame turn (asynchronous, after this frame) erases the entry.
  state_->ReadRoster(game_key, &finish_scratch_);
  const ActorId game = MakeActorId(kGameActorType, game_key);
  driver_.Call(game, kEndGame, game_key, 128, nullptr);
  active_games_--;
  for (const ActorId member : finish_scratch_) {
    PlayerRec* rec = players_.Find(member);
    ACTOP_CHECK(rec != nullptr);
    // Remove from the in-game sampling vector (swap-remove via the record's
    // slot; when member IS the last element the final store below wins).
    if (rec->slot != kNoSlot) {
      const uint32_t idx = rec->slot;
      const ActorId moved = in_game_players_.back();
      in_game_players_[idx] = moved;
      in_game_players_.pop_back();
      players_.Find(moved)->slot = idx;
      rec->slot = kNoSlot;
    }
    rec->games_left--;
    if (rec->games_left <= 0) {
      // Departure + replacement arrival keeps the population at target.
      // (AddNewPlayer inserts, which may rehash — rec is dead past here.)
      players_.Erase(member);
      players_departed_++;
      AddNewPlayer();
    } else {
      idle_pool_.push_back(member);
    }
  }
  TryFormGames();
}

}  // namespace actop
