// Heartbeat benchmark (§6.2).
//
// "A simple monitoring service which maintains the status periodically
// updated by the client. This workload is similar in its call pattern to
// many popular services built with Orleans, like running statistics,
// aggregates or standing queries."
//
// Clients send status updates to monitor actors; each update optionally
// performs a synchronous I/O write (blocking time w > 0), which exercises
// the β < 1 branch of the thread-allocation model.

#ifndef SRC_WORKLOAD_HEARTBEAT_H_
#define SRC_WORKLOAD_HEARTBEAT_H_

#include "src/common/ids.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace actop {

inline constexpr ActorType kMonitorActorType = 2;

struct HeartbeatWorkloadConfig {
  int num_monitors = 4000;
  double request_rate = 10000.0;
  uint32_t request_bytes = 200;
  SimDuration handler_compute = Micros(25);
  SimDuration handler_blocking = 0;  // set > 0 to model synchronous I/O
  SimDuration client_timeout = Seconds(10);
  // When true, Start() registers actors but never starts the pool's own
  // Poisson chain: arrivals come exclusively through ClientPool::Inject from
  // an external open-loop driver (src/load/).
  bool external_clients = false;
  uint64_t seed = 23;
};

class HeartbeatWorkload {
 public:
  HeartbeatWorkload(Cluster* cluster, HeartbeatWorkloadConfig config);

  void Start();
  void Stop();

  ClientPool& clients() { return clients_; }

 private:
  Cluster* cluster_;
  HeartbeatWorkloadConfig config_;
  ClientPool clients_;
};

}  // namespace actop

#endif  // SRC_WORKLOAD_HEARTBEAT_H_
