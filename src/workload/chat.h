// Chat service workload.
//
// The paper's motivating example (§1): every user and chat room is an actor.
// Users post messages to their room; the room fans the message out to all
// members. Rooms churn as users move between them, changing the
// communication graph — the scenario the partitioner is designed for.

#ifndef SRC_WORKLOAD_CHAT_H_
#define SRC_WORKLOAD_CHAT_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace actop {

inline constexpr ActorType kChatUserActorType = 5;
inline constexpr ActorType kChatRoomActorType = 6;

// User methods.
inline constexpr MethodId kPostMessage = 0;  // client entry: user posts to room
inline constexpr MethodId kNotify = 1;       // room -> user fan-out
inline constexpr MethodId kJoinRoom = 2;     // driver -> user (app_data = room key)
// Room methods.
inline constexpr MethodId kBroadcast = 0;    // user -> room
inline constexpr MethodId kAddMember = 1;    // user -> room (app_data = user id)
inline constexpr MethodId kRemoveMember = 2; // user -> room (app_data = user id)

struct ChatWorkloadConfig {
  int num_users = 2000;
  int num_rooms = 100;
  double message_rate = 500.0;       // posts per second, cluster-wide
  SimDuration rehome_period = Seconds(2);  // how often some user switches room
  int rehomes_per_period = 5;
  uint32_t message_bytes = 512;
  SimDuration user_compute = Micros(25);
  SimDuration room_compute = Micros(35);
  SimDuration client_timeout = Seconds(10);
  // When true, Start() builds the rooms but leaves arrival generation to an
  // external open-loop driver via ClientPool::Inject (src/load/).
  bool external_clients = false;
  uint64_t seed = 41;
};

// Actor-side counters. Atomic (relaxed): under the sharded engine these are
// bumped concurrently from whichever shards host the user/room actors; the
// totals are only read after the run drains, so relaxed is sufficient.
struct ChatState {
  std::atomic<uint64_t> messages_posted{0};
  std::atomic<uint64_t> notifications{0};
};

class ChatWorkload {
 public:
  ChatWorkload(Cluster* cluster, ChatWorkloadConfig config);

  // Assigns users to rooms and starts posting + churn.
  void Start();
  void Stop();

  ClientPool& clients() { return clients_; }
  const ChatState& state() const { return *state_; }

 private:
  void RehomeSomeUsers();
  bool PickTarget(Rng& rng, ActorId* target, MethodId* method);

  Cluster* cluster_;
  ChatWorkloadConfig config_;
  Rng rng_;
  std::shared_ptr<ChatState> state_;
  ClientPool clients_;
  DirectClient driver_;
  std::vector<uint64_t> user_room_;  // user index -> room key
  bool running_ = false;
};

}  // namespace actop

#endif  // SRC_WORKLOAD_CHAT_H_
