#include "src/net/network.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace actop {

Network::Network(Simulation* sim, NetworkConfig config) : config_(config) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(config.one_way_latency >= 0);
  ACTOP_CHECK(config.ns_per_byte >= 0.0);
  lanes_.resize(1);
  lanes_[0].sim = sim;
}

Network::Network(ShardedEngine* engine, NetworkConfig config)
    : engine_(engine), config_(config) {
  ACTOP_CHECK(engine != nullptr);
  ACTOP_CHECK(config.ns_per_byte >= 0.0);
  // The conservative-window guarantee: cross-shard arrivals land at least
  // one latency out, so they can never be due inside the current window.
  ACTOP_CHECK(config.one_way_latency >= engine->lookahead());
  const int shards = engine->shards();
  lanes_.resize(static_cast<size_t>(shards));
  for (int i = 0; i < shards; i++) {
    lanes_[static_cast<size_t>(i)].sim = &engine->shard(i);
  }
  outboxes_.resize(static_cast<size_t>(shards) * static_cast<size_t>(shards));
  engine_->set_exchange_hook([this](int dst) { DrainInbound(dst); });
}

Network::~Network() {
  if (engine_ != nullptr) {
    engine_->set_exchange_hook(nullptr);
  }
}

NodeId Network::AddNode(DeliverFn deliver, int shard) {
  ACTOP_CHECK(deliver != nullptr);
  ACTOP_CHECK(shard >= 0 && shard < shards());
  nodes_.push_back(std::move(deliver));
  node_shard_.push_back(shard);
  return static_cast<NodeId>(nodes_.size() - 1);
}

uint32_t Network::AcquireSlot(Lane& lane, NodeId from, NodeId to, uint32_t bytes,
                              std::shared_ptr<void> msg) {
  uint32_t slot;
  if (lane.in_flight_free != kNilIndex) {
    slot = lane.in_flight_free;
    lane.in_flight_free = lane.in_flight[slot].free_next;
  } else {
    lane.in_flight.emplace_back();
    slot = static_cast<uint32_t>(lane.in_flight.size() - 1);
  }
  InFlight& f = lane.in_flight[slot];
  f.msg = std::move(msg);
  f.from = from;
  f.to = to;
  f.bytes = bytes;
  return slot;
}

void Network::Send(NodeId from, NodeId to, uint32_t bytes, std::shared_ptr<void> msg) {
  ACTOP_CHECK(from >= 0 && from < static_cast<NodeId>(nodes_.size()));
  ACTOP_CHECK(to >= 0 && to < static_cast<NodeId>(nodes_.size()));
  const int src_shard = node_shard_[static_cast<size_t>(from)];
  Lane& lane = lanes_[static_cast<size_t>(src_shard)];
  lane.total_messages++;
  lane.total_bytes += bytes;
  SimDuration fault_delay = 0;
  if (fault_injector_) {
    const FaultDecision fault =
        fault_injector_(from, to, bytes, src_shard, lane.sim->now());
    if (fault.drop) {
      lane.dropped_messages++;
      return;
    }
    if (fault.extra_delay > 0) {
      lane.delayed_messages++;
      fault_delay = fault.extra_delay;
    }
  }
  const auto wire = static_cast<SimDuration>(config_.ns_per_byte * static_cast<double>(bytes));
  const SimDuration delay = config_.one_way_latency + wire + fault_delay;
  const int dst_shard = node_shard_[static_cast<size_t>(to)];
  if (dst_shard == src_shard) {
    // Same-shard fast path: park the payload in the lane slab; the event
    // capture is [this, shard, slot], which stays inline in the engine
    // (capturing the shared_ptr directly would work too, but
    // [this, from, to, bytes, msg] overflows the inline buffer).
    const uint32_t slot = AcquireSlot(lane, from, to, bytes, std::move(msg));
    lane.sim->ScheduleAfter(delay, [this, src_shard, slot] { Deliver(src_shard, slot); });
    return;
  }
  // Cross-shard: arrival time delay >= one_way_latency >= lookahead past the
  // sender's clock, hence at or beyond the current window's end — the
  // destination merges it at the barrier, before its next window opens.
  std::vector<OutMsg>& box =
      outboxes_[static_cast<size_t>(src_shard) * static_cast<size_t>(shards()) +
                static_cast<size_t>(dst_shard)];
  box.push_back(OutMsg{lane.sim->now() + delay, lane.next_out_seq++, from, to, bytes,
                       std::move(msg)});
}

void Network::Deliver(int shard, uint32_t slot) {
  Lane& lane = lanes_[static_cast<size_t>(shard)];
  // Copy the fields out and recycle the slot before invoking the handler:
  // the handler may Send, which can grow in_flight or reuse this slot.
  InFlight& f = lane.in_flight[slot];
  std::shared_ptr<void> msg = std::move(f.msg);
  const NodeId from = f.from;
  const NodeId to = f.to;
  const uint32_t bytes = f.bytes;
  f.free_next = lane.in_flight_free;
  lane.in_flight_free = slot;
  nodes_[static_cast<size_t>(to)](from, bytes, std::move(msg));
}

void Network::DrainInbound(int dst) {
  Lane& lane = lanes_[static_cast<size_t>(dst)];
  std::vector<OutMsg>& scratch = lane.inbound_scratch;
  scratch.clear();
  const int k = shards();
  // Gather per-src runs in src order; each run is already seq-ordered (and
  // therefore when-ordered within equal timestamps as the sender emitted
  // them). The stable sort below only has to order across sources.
  for (int src = 0; src < k; src++) {
    if (src == dst) {
      continue;
    }
    std::vector<OutMsg>& box =
        outboxes_[static_cast<size_t>(src) * static_cast<size_t>(k) + static_cast<size_t>(dst)];
    for (OutMsg& m : box) {
      scratch.push_back(std::move(m));
    }
    box.clear();
  }
  if (scratch.empty()) {
    return;
  }
  // Deterministic merge order: (when, src_shard, seq). The gather above
  // appended sources in ascending src order with ascending seq within each,
  // so a stable sort by `when` alone realizes exactly that order without
  // materializing src ids per message.
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const OutMsg& a, const OutMsg& b) { return a.when < b.when; });
  for (OutMsg& m : scratch) {
    const uint32_t slot = AcquireSlot(lane, m.from, m.to, m.bytes, std::move(m.msg));
    lane.sim->ScheduleAt(m.when, [this, dst, slot] { Deliver(dst, slot); });
  }
  scratch.clear();
}

}  // namespace actop
