#include "src/net/network.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace actop {

Network::Network(Simulation* sim, NetworkConfig config) : config_(config) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(config.one_way_latency >= 0);
  ACTOP_CHECK(config.ns_per_byte >= 0.0);
  lanes_.resize(1);
  lanes_[0].sim = sim;
}

Network::Network(ShardedEngine* engine, NetworkConfig config)
    : engine_(engine), config_(config) {
  ACTOP_CHECK(engine != nullptr);
  ACTOP_CHECK(config.ns_per_byte >= 0.0);
  // The conservative-window guarantee: cross-shard arrivals land at least
  // one latency out, so they can never be due inside the current window.
  ACTOP_CHECK(config.one_way_latency >= engine->lookahead());
  const int shards = engine->shards();
  lanes_.resize(static_cast<size_t>(shards));
  for (int i = 0; i < shards; i++) {
    lanes_[static_cast<size_t>(i)].sim = &engine->shard(i);
  }
  outboxes_.resize(static_cast<size_t>(shards) * static_cast<size_t>(shards));
  pending_ = std::make_unique<PendingInbox[]>(static_cast<size_t>(shards));
  pending_src_.resize(static_cast<size_t>(shards) * static_cast<size_t>(shards));
  engine_->set_exchange_hook([this](int dst) { DrainInbound(dst); });
}

Network::~Network() {
  if (engine_ != nullptr) {
    engine_->set_exchange_hook(nullptr);
  }
}

NodeId Network::AddNode(DeliverFn deliver, int shard) {
  ACTOP_CHECK(deliver != nullptr);
  ACTOP_CHECK(shard >= 0 && shard < shards());
  nodes_.push_back(std::move(deliver));
  node_shard_.push_back(shard);
  return static_cast<NodeId>(nodes_.size() - 1);
}

uint32_t Network::AcquireSlot(Lane& lane, NodeId from, NodeId to, uint32_t bytes,
                              std::shared_ptr<void> msg) {
  uint32_t slot;
  if (lane.in_flight_free != kNilIndex) {
    slot = lane.in_flight_free;
    lane.in_flight_free = lane.in_flight[slot].free_next;
  } else {
    lane.in_flight.emplace_back();
    slot = static_cast<uint32_t>(lane.in_flight.size() - 1);
  }
  InFlight& f = lane.in_flight[slot];
  f.msg = std::move(msg);
  f.from = from;
  f.to = to;
  f.bytes = bytes;
  return slot;
}

void Network::Send(NodeId from, NodeId to, uint32_t bytes, std::shared_ptr<void> msg) {
  ACTOP_CHECK(from >= 0 && from < static_cast<NodeId>(nodes_.size()));
  ACTOP_CHECK(to >= 0 && to < static_cast<NodeId>(nodes_.size()));
  const int src_shard = node_shard_[static_cast<size_t>(from)];
  Lane& lane = lanes_[static_cast<size_t>(src_shard)];
  lane.total_messages++;
  lane.total_bytes += bytes;
  SimDuration fault_delay = 0;
  if (fault_injector_) {
    const FaultDecision fault =
        fault_injector_(from, to, bytes, src_shard, lane.sim->now());
    if (fault.drop) {
      lane.dropped_messages++;
      return;
    }
    if (fault.extra_delay > 0) {
      lane.delayed_messages++;
      fault_delay = fault.extra_delay;
    }
  }
  const auto wire = static_cast<SimDuration>(config_.ns_per_byte * static_cast<double>(bytes));
  const SimDuration delay = config_.one_way_latency + wire + fault_delay;
  const int dst_shard = node_shard_[static_cast<size_t>(to)];
  if (dst_shard == src_shard) {
    // Same-shard fast path: park the payload in the lane slab; the event
    // capture is [this, shard, slot], which stays inline in the engine
    // (capturing the shared_ptr directly would work too, but
    // [this, from, to, bytes, msg] overflows the inline buffer).
    const uint32_t slot = AcquireSlot(lane, from, to, bytes, std::move(msg));
    lane.sim->ScheduleAfter(delay, [this, src_shard, slot] { Deliver(src_shard, slot); });
    return;
  }
  // Cross-shard: arrival time delay >= one_way_latency >= lookahead past the
  // sender's clock, hence at or beyond the current window's end — the
  // destination merges it at the barrier, before its next window opens.
  std::vector<OutMsg>& box =
      outboxes_[static_cast<size_t>(src_shard) * static_cast<size_t>(shards()) +
                static_cast<size_t>(dst_shard)];
  if (box.empty()) {
    // First message this window for (src, dst): register src on dst's
    // worklist. The reservation is a distinct slot per source (only the
    // counter is shared), and the window barrier orders it before the drain.
    const uint32_t i =
        pending_[static_cast<size_t>(dst_shard)].count.fetch_add(1, std::memory_order_relaxed);
    pending_src_[static_cast<size_t>(dst_shard) * static_cast<size_t>(shards()) +
                 static_cast<size_t>(i)] = src_shard;
  }
  box.push_back(OutMsg{lane.sim->now() + delay, lane.next_out_seq++, from, to, bytes,
                       std::move(msg)});
}

void Network::Deliver(int shard, uint32_t slot) {
  Lane& lane = lanes_[static_cast<size_t>(shard)];
  // Copy the fields out and recycle the slot before invoking the handler:
  // the handler may Send, which can grow in_flight or reuse this slot.
  InFlight& f = lane.in_flight[slot];
  std::shared_ptr<void> msg = std::move(f.msg);
  const NodeId from = f.from;
  const NodeId to = f.to;
  const uint32_t bytes = f.bytes;
  f.free_next = lane.in_flight_free;
  lane.in_flight_free = slot;
  nodes_[static_cast<size_t>(to)](from, bytes, std::move(msg));
}

void Network::DrainInbound(int dst) {
  Lane& lane = lanes_[static_cast<size_t>(dst)];
  const int k = shards();
  // Worklist instead of an O(K) sweep: only sources that pushed a first
  // message this window appear. The relaxed load is safe — the window
  // barrier orders every registration and outbox write before this drain.
  PendingInbox& pending = pending_[static_cast<size_t>(dst)];
  const uint32_t n = pending.count.load(std::memory_order_relaxed);
  if (n == 0) {
    return;
  }
  pending.count.store(0, std::memory_order_relaxed);
  int32_t* srcs = &pending_src_[static_cast<size_t>(dst) * static_cast<size_t>(k)];
  // Registration order is racy (whichever source sent first); sorting
  // ascending restores the deterministic gather order.
  std::sort(srcs, srcs + n);
  std::vector<OutMsg>& scratch = lane.inbound_scratch;
  scratch.clear();
  for (uint32_t i = 0; i < n; i++) {
    std::vector<OutMsg>& box =
        outboxes_[static_cast<size_t>(srcs[i]) * static_cast<size_t>(k) + static_cast<size_t>(dst)];
    for (OutMsg& m : box) {
      scratch.push_back(std::move(m));
    }
    box.clear();
  }
  // Deterministic merge order: (when, src_shard, seq). The gather above
  // appended sources in ascending src order with ascending seq within each,
  // so a stable sort by `when` alone realizes exactly that order without
  // materializing src ids per message.
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const OutMsg& a, const OutMsg& b) { return a.when < b.when; });
  // Merge the batch into the staged run. Compacting the consumed prefix
  // first keeps the merge over live messages only. inplace_merge is stable
  // with first-range-first ties, so earlier drains sort ahead of later ones
  // at equal timestamps — the same order per-message scheduling produced.
  if (lane.staged_head > 0) {
    lane.staged.erase(lane.staged.begin(),
                      lane.staged.begin() + static_cast<ptrdiff_t>(lane.staged_head));
    lane.staged_head = 0;
  }
  const auto mid = static_cast<ptrdiff_t>(lane.staged.size());
  for (OutMsg& m : scratch) {
    lane.staged.push_back(std::move(m));
  }
  scratch.clear();
  std::inplace_merge(lane.staged.begin(), lane.staged.begin() + mid, lane.staged.end(),
                     [](const OutMsg& a, const OutMsg& b) { return a.when < b.when; });
  // Pin the cursor at the head: one pending heap event per lane covers the
  // whole staged run.
  const SimTime head = lane.staged.front().when;
  if (lane.cursor_event == 0) {
    lane.cursor_when = head;
    lane.cursor_event = lane.sim->ScheduleAt(head, [this, dst] { CursorDeliver(dst); });
  } else if (head < lane.cursor_when) {
    const bool moved = lane.sim->Reschedule(lane.cursor_event, head);
    ACTOP_CHECK(moved);
    lane.cursor_when = head;
  }
}

void Network::CursorDeliver(int dst) {
  Lane& lane = lanes_[static_cast<size_t>(dst)];
  lane.cursor_event = 0;
  const SimTime now = lane.sim->now();
  // Deliver every staged message due at this instant back to back: one heap
  // event per distinct arrival time instead of one per message. Handlers may
  // Send (touching outboxes and the in-flight slab) but never mutate the
  // staged run — drains only happen at window barriers.
  while (lane.staged_head < lane.staged.size() && lane.staged[lane.staged_head].when == now) {
    OutMsg& m = lane.staged[lane.staged_head++];
    std::shared_ptr<void> msg = std::move(m.msg);
    const NodeId from = m.from;
    const NodeId to = m.to;
    const uint32_t bytes = m.bytes;
    nodes_[static_cast<size_t>(to)](from, bytes, std::move(msg));
  }
  if (lane.staged_head < lane.staged.size()) {
    lane.cursor_when = lane.staged[lane.staged_head].when;
    lane.cursor_event = lane.sim->ScheduleAt(lane.cursor_when, [this, dst] { CursorDeliver(dst); });
  } else {
    lane.staged.clear();
    lane.staged_head = 0;
  }
}

}  // namespace actop
