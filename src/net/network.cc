#include "src/net/network.h"

#include <utility>

#include "src/common/check.h"

namespace actop {

Network::Network(Simulation* sim, NetworkConfig config) : sim_(sim), config_(config) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(config.one_way_latency >= 0);
  ACTOP_CHECK(config.ns_per_byte >= 0.0);
}

NodeId Network::AddNode(DeliverFn deliver) {
  ACTOP_CHECK(deliver != nullptr);
  nodes_.push_back(std::move(deliver));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::Send(NodeId from, NodeId to, uint32_t bytes, std::shared_ptr<void> msg) {
  ACTOP_CHECK(from >= 0 && from < static_cast<NodeId>(nodes_.size()));
  ACTOP_CHECK(to >= 0 && to < static_cast<NodeId>(nodes_.size()));
  total_messages_++;
  total_bytes_ += bytes;
  SimDuration fault_delay = 0;
  if (fault_injector_) {
    const FaultDecision fault = fault_injector_(from, to, bytes);
    if (fault.drop) {
      dropped_messages_++;
      return;
    }
    if (fault.extra_delay > 0) {
      delayed_messages_++;
      fault_delay = fault.extra_delay;
    }
  }
  const auto wire = static_cast<SimDuration>(config_.ns_per_byte * static_cast<double>(bytes));
  const SimDuration delay = config_.one_way_latency + wire + fault_delay;
  // Park the payload in a slab slot; the event capture is [this, slot], which
  // stays inline in the engine (capturing the shared_ptr directly would work
  // too, but [this, from, to, bytes, msg] overflows the inline buffer).
  uint32_t slot;
  if (in_flight_free_ != kNilIndex) {
    slot = in_flight_free_;
    in_flight_free_ = in_flight_[slot].free_next;
  } else {
    in_flight_.emplace_back();
    slot = static_cast<uint32_t>(in_flight_.size() - 1);
  }
  InFlight& f = in_flight_[slot];
  f.msg = std::move(msg);
  f.from = from;
  f.to = to;
  f.bytes = bytes;
  sim_->ScheduleAfter(delay, [this, slot] { Deliver(slot); });
}

void Network::Deliver(uint32_t slot) {
  // Copy the fields out and recycle the slot before invoking the handler:
  // the handler may Send, which can grow in_flight_ or reuse this slot.
  InFlight& f = in_flight_[slot];
  std::shared_ptr<void> msg = std::move(f.msg);
  const NodeId from = f.from;
  const NodeId to = f.to;
  const uint32_t bytes = f.bytes;
  f.free_next = in_flight_free_;
  in_flight_free_ = slot;
  nodes_[static_cast<size_t>(to)](from, bytes, std::move(msg));
}

}  // namespace actop
