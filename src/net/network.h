// Simulated datacenter network.
//
// Nodes (servers and client frontends) exchange messages; delivery is delayed
// by a fixed one-way latency plus a size/bandwidth term. The paper's Figure 4
// shows wire time is a small part of end-to-end latency (~1%) relative to
// queuing, so a simple latency+bandwidth model preserves the local/remote
// asymmetry that drives the results.
//
// The network layer is payload-agnostic: messages are type-erased shared
// pointers, and the declared byte size (used for the bandwidth term and for
// serialization-cost modeling at the endpoints) travels alongside.
//
// Hot path: each in-flight message parks its payload and routing fields in a
// slab slot so the delivery event's capture is just [this, shard, slot] —
// small enough to stay inline in the engine's InlineTask, making Send
// allocation-free at steady state (slots are recycled through a free list).
//
// Sharded mode (Network over a ShardedEngine): each shard owns a "lane" —
// its own in-flight slab, counters, and outbound sequence space. A message
// between nodes on the same shard takes exactly the serial path on that
// shard's Simulation. A cross-shard message is appended to the per-(src,dst)
// outbox with its precomputed arrival time; the first push into an empty
// outbox also registers the source on the destination's pending-inbox
// worklist (an atomic slot reservation), so the per-window drain visits only
// sources that actually sent — O(active sources), not O(K) — which matters
// when K reaches the hundreds. At the window barrier each destination sorts
// its worklist (ascending src restores the deterministic gather order),
// gathers the outboxes, and merges the batch into a per-lane `staged` run
// ordered by (when, drain epoch, src_shard, seq) — deterministic for a fixed
// shard count, independent of thread scheduling. Instead of one heap event
// per message, a single cursor event per lane delivers every staged message
// due at its instant and reschedules itself to the next distinct arrival
// time, so a drain of B messages costs one schedule (or one Reschedule when
// a new head arrives earlier), not B. The fixed one-way latency is the
// engine's lookahead: every cross-shard arrival time is at least one latency
// after its send, hence at or beyond the window end, so draining at barriers
// can never deliver into a window already running.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/sim_time.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/simulation.h"

namespace actop {

// Index of a node attached to the network.
using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

struct NetworkConfig {
  SimDuration one_way_latency = Micros(250);
  // Wire time per byte in ns/byte; 1 Gb/s == 8 ns/byte.
  double ns_per_byte = 8.0;
};

// Verdict of the fault injector for one message (chaos testing). Extra delay
// lets later messages overtake this one, which exercises reordering paths.
struct FaultDecision {
  bool drop = false;
  SimDuration extra_delay = 0;
};

class Network {
 public:
  using DeliverFn = std::function<void(NodeId from, uint32_t bytes, std::shared_ptr<void> msg)>;
  // Inspects a message about to be sent and decides its fate. The injector
  // sees every message (application and control, server and client links).
  // `src_shard` is the shard issuing the send (0 in serial mode) and `now`
  // its current simulated time; in parallel mode the injector runs
  // concurrently on every shard and must draw from per-shard streams.
  using FaultFn = std::function<FaultDecision(NodeId from, NodeId to, uint32_t bytes,
                                              int src_shard, SimTime now)>;

  // Serial network: one lane on one engine (byte-identical to the
  // pre-sharding implementation).
  Network(Simulation* sim, NetworkConfig config);

  // Sharded network: one lane per engine shard. Registers the engine's
  // exchange hook; the engine must outlive this network. Requires
  // one_way_latency >= engine lookahead (the conservative-window guarantee).
  Network(ShardedEngine* engine, NetworkConfig config);

  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a node on shard 0 (serial mode: the only shard); `deliver` is
  // invoked (via the event queue) for each message addressed to it. Returns
  // the node's id.
  NodeId AddNode(DeliverFn deliver) { return AddNode(std::move(deliver), 0); }

  // Registers a node on the given shard. Its handler runs on that shard's
  // event loop. Setup-time only.
  NodeId AddNode(DeliverFn deliver, int shard);

  // Sends a message of the given (modeled) size from `from` to `to`. Must be
  // called from `from`'s shard (serial mode: trivially true).
  void Send(NodeId from, NodeId to, uint32_t bytes, std::shared_ptr<void> msg);

  // Installs (or, with nullptr, removes) the chaos fault injector.
  // Coordinator context only (setup, rail tasks).
  void set_fault_injector(FaultFn fn) { fault_injector_ = std::move(fn); }

  uint64_t total_messages() const { return SumLanes(&Lane::total_messages); }
  uint64_t total_bytes() const { return SumLanes(&Lane::total_bytes); }
  uint64_t dropped_messages() const { return SumLanes(&Lane::dropped_messages); }
  uint64_t delayed_messages() const { return SumLanes(&Lane::delayed_messages); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int shard_of_node(NodeId node) const { return node_shard_[static_cast<size_t>(node)]; }
  int shards() const { return static_cast<int>(lanes_.size()); }
  const NetworkConfig& config() const { return config_; }

 private:
  static constexpr uint32_t kNilIndex = 0xFFFFFFFFu;

  // One message on the wire. Slots recycle through a free list threaded
  // over free_next.
  struct InFlight {
    std::shared_ptr<void> msg;
    NodeId from = kNoNode;
    uint32_t bytes = 0;
    uint32_t free_next = kNilIndex;
    NodeId to = kNoNode;
  };

  // A message crossing shards: parked in the src->dst outbox until the
  // window barrier. `when` is the absolute arrival time (computed at send,
  // on the sender's clock); `seq` the sender lane's monotone sequence.
  struct OutMsg {
    SimTime when = 0;
    uint64_t seq = 0;
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    uint32_t bytes = 0;
    std::shared_ptr<void> msg;
  };

  // Per-shard network state. Cacheline-aligned: lanes for different shards
  // are written concurrently during a window.
  struct alignas(64) Lane {
    Simulation* sim = nullptr;
    std::vector<InFlight> in_flight;
    uint32_t in_flight_free = kNilIndex;
    uint64_t next_out_seq = 0;
    uint64_t total_messages = 0;
    uint64_t total_bytes = 0;
    uint64_t dropped_messages = 0;
    uint64_t delayed_messages = 0;
    // Merge scratch for DrainInbound; reused every window.
    std::vector<OutMsg> inbound_scratch;
    // Inbound messages merged but not yet delivered, ordered by `when`
    // (ties: drain epoch, then src, then seq). staged[staged_head..) are
    // live; the consumed prefix is compacted away at the next drain. One
    // cursor event per lane walks this run: whenever staged is non-empty,
    // cursor_event is pending at staged[staged_head].when (== cursor_when).
    std::vector<OutMsg> staged;
    size_t staged_head = 0;
    EventId cursor_event = 0;
    SimTime cursor_when = 0;
  };

  // Destination-side worklist of sources with a non-empty outbox this
  // window. Sources reserve distinct slots with a relaxed fetch_add (the
  // window barriers provide all ordering); the drain sorts the slots.
  struct alignas(64) PendingInbox {
    std::atomic<uint32_t> count{0};
  };

  uint32_t AcquireSlot(Lane& lane, NodeId from, NodeId to, uint32_t bytes,
                       std::shared_ptr<void> msg);
  void Deliver(int shard, uint32_t slot);
  // Engine exchange hook: runs on shard `dst`'s worker at the window
  // barrier; merges the registered inbound outboxes into dst's staged run
  // and pins the cursor event at its head.
  void DrainInbound(int dst);
  // Cursor event body: delivers every staged message due at the current
  // instant, then reschedules for the next distinct arrival time.
  void CursorDeliver(int dst);

  uint64_t SumLanes(uint64_t Lane::* field) const {
    uint64_t total = 0;
    for (const Lane& lane : lanes_) {
      total += lane.*field;
    }
    return total;
  }

  ShardedEngine* engine_ = nullptr;  // null in serial mode
  NetworkConfig config_;
  std::vector<DeliverFn> nodes_;
  std::vector<int32_t> node_shard_;
  std::vector<Lane> lanes_;
  // outboxes_[src * shards + dst], dst != src. Written by src's worker
  // during the window, drained by dst's worker at the barrier.
  std::vector<std::vector<OutMsg>> outboxes_;
  // pending_[dst] counts the live entries in pending_src_[dst * shards ..];
  // each entry names a source whose outbox to dst is non-empty. Distinct
  // slots are written by distinct sources, so only the counter is atomic.
  std::unique_ptr<PendingInbox[]> pending_;
  std::vector<int32_t> pending_src_;
  FaultFn fault_injector_;
};

}  // namespace actop

#endif  // SRC_NET_NETWORK_H_
