// Simulated datacenter network.
//
// Nodes (servers and client frontends) exchange messages; delivery is delayed
// by a fixed one-way latency plus a size/bandwidth term. The paper's Figure 4
// shows wire time is a small part of end-to-end latency (~1%) relative to
// queuing, so a simple latency+bandwidth model preserves the local/remote
// asymmetry that drives the results.
//
// The network layer is payload-agnostic: messages are type-erased shared
// pointers, and the declared byte size (used for the bandwidth term and for
// serialization-cost modeling at the endpoints) travels alongside.
//
// Hot path: each in-flight message parks its payload and routing fields in a
// slab slot so the delivery event's capture is just [this, slot] — small
// enough to stay inline in the engine's InlineTask, making Send allocation-
// free at steady state (slots are recycled through a free list).

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop {

// Index of a node attached to the network.
using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

struct NetworkConfig {
  SimDuration one_way_latency = Micros(250);
  // Wire time per byte in ns/byte; 1 Gb/s == 8 ns/byte.
  double ns_per_byte = 8.0;
};

// Verdict of the fault injector for one message (chaos testing). Extra delay
// lets later messages overtake this one, which exercises reordering paths.
struct FaultDecision {
  bool drop = false;
  SimDuration extra_delay = 0;
};

class Network {
 public:
  using DeliverFn = std::function<void(NodeId from, uint32_t bytes, std::shared_ptr<void> msg)>;
  // Inspects a message about to be sent and decides its fate. The injector
  // sees every message (application and control, server and client links).
  using FaultFn = std::function<FaultDecision(NodeId from, NodeId to, uint32_t bytes)>;

  Network(Simulation* sim, NetworkConfig config);

  // Registers a node; `deliver` is invoked (via the event queue) for each
  // message addressed to it. Returns the node's id.
  NodeId AddNode(DeliverFn deliver);

  // Sends a message of the given (modeled) size from `from` to `to`.
  void Send(NodeId from, NodeId to, uint32_t bytes, std::shared_ptr<void> msg);

  // Installs (or, with nullptr, removes) the chaos fault injector.
  void set_fault_injector(FaultFn fn) { fault_injector_ = std::move(fn); }

  uint64_t total_messages() const { return total_messages_; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t dropped_messages() const { return dropped_messages_; }
  uint64_t delayed_messages() const { return delayed_messages_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const NetworkConfig& config() const { return config_; }

 private:
  static constexpr uint32_t kNilIndex = 0xFFFFFFFFu;

  // One message on the wire. Slots recycle through a free list threaded
  // over free_next.
  struct InFlight {
    std::shared_ptr<void> msg;
    NodeId from = kNoNode;
    uint32_t bytes = 0;
    uint32_t free_next = kNilIndex;
    NodeId to = kNoNode;
  };

  void Deliver(uint32_t slot);

  Simulation* sim_;
  NetworkConfig config_;
  std::vector<DeliverFn> nodes_;
  std::vector<InFlight> in_flight_;
  uint32_t in_flight_free_ = kNilIndex;
  FaultFn fault_injector_;
  uint64_t total_messages_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t dropped_messages_ = 0;
  uint64_t delayed_messages_ = 0;
};

}  // namespace actop

#endif  // SRC_NET_NETWORK_H_
