#include "src/seda/stage.h"

#include <utility>

#include "src/common/check.h"

namespace actop {

Stage::Stage(Simulation* sim, CpuModel* cpu, std::string name, int threads,
             size_t queue_capacity)
    : sim_(sim),
      cpu_(cpu),
      name_(std::move(name)),
      threads_(threads),
      queue_capacity_(queue_capacity) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(cpu != nullptr);
  ACTOP_CHECK(threads >= 1);
  last_queue_account_ = sim_->now();
}

void Stage::AccountQueueLength() {
  const SimTime now = sim_->now();
  const auto dt = static_cast<double>(now - last_queue_account_);
  if (dt > 0.0) {
    window_.queue_len_time_integral += dt * static_cast<double>(queue_.size());
  }
  last_queue_account_ = now;
}

void Stage::Enqueue(StageEvent event) {
  window_.arrivals++;
  if (queue_.size() >= queue_capacity_) {
    window_.rejections++;
    total_rejections_++;
    if (event.rejected) {
      // Deliver the rejection through the event queue to avoid synchronous
      // re-entry into the caller.
      sim_->ScheduleAfter(0, std::move(event.rejected));
    }
    return;
  }
  AccountQueueLength();
  queue_.push_back(QueuedEvent{std::move(event), sim_->now()});
  MaybeStartService();
}

void Stage::MaybeStartService() {
  while (busy_ < threads_ && !queue_.empty()) {
    AccountQueueLength();
    QueuedEvent qe = std::move(queue_.front());
    queue_.pop_front();
    StartService(std::move(qe));
  }
}

void Stage::StartService(QueuedEvent&& qe) {
  busy_++;
  const SimTime now = sim_->now();
  window_.sum_queue_wait += static_cast<double>(now - qe.enqueue_time);
  const SimDuration compute = qe.event.compute;
  const SimDuration blocking = qe.event.blocking;
  auto done = std::move(qe.event.done);
  cpu_->BeginCompute(
      compute, [this, service_start = now, compute, blocking, done = std::move(done)]() mutable {
        if (blocking > 0) {
          sim_->ScheduleAfter(blocking,
                              [this, service_start, compute, blocking,
                               done = std::move(done)]() mutable {
                                FinishService(service_start, compute, blocking, std::move(done));
                              });
        } else {
          FinishService(service_start, compute, blocking, std::move(done));
        }
      });
}

void Stage::FinishService(SimTime service_start, SimDuration compute, SimDuration blocking,
                          std::function<void()> done) {
  const SimTime now = sim_->now();
  window_.completions++;
  total_completions_++;
  window_.sum_wallclock += static_cast<double>(now - service_start);
  window_.sum_compute += static_cast<double>(compute);
  window_.sum_blocking += static_cast<double>(blocking);
  ACTOP_CHECK(busy_ > 0);
  busy_--;
  // Start the next queued event before running the continuation so that a
  // continuation enqueueing into this same stage observes a consistent state.
  MaybeStartService();
  if (done) {
    done();
  }
}

void Stage::set_threads(int threads) {
  ACTOP_CHECK(threads >= 1);
  threads_ = threads;
  MaybeStartService();
}

StageWindow Stage::TakeWindow() {
  AccountQueueLength();
  StageWindow out = window_;
  window_ = StageWindow{};
  return out;
}

}  // namespace actop
