#include "src/seda/stage.h"

#include <utility>

#include "src/common/check.h"

namespace actop {

Stage::Stage(Simulation* sim, CpuModel* cpu, std::string name, int threads,
             size_t queue_capacity)
    : sim_(sim),
      cpu_(cpu),
      name_(std::move(name)),
      threads_(threads),
      queue_capacity_(queue_capacity) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(cpu != nullptr);
  ACTOP_CHECK(threads >= 1);
  last_queue_account_ = sim_->now();
}

void Stage::AccountQueueLength() {
  const SimTime now = sim_->now();
  const auto dt = static_cast<double>(now - last_queue_account_);
  if (dt > 0.0) {
    window_.queue_len_time_integral += dt * static_cast<double>(queue_.size());
  }
  last_queue_account_ = now;
}

void Stage::Enqueue(StageEvent event) {
  window_.arrivals++;
  if (queue_.size() >= queue_capacity_) {
    window_.rejections++;
    total_rejections_++;
    if (event.rejected) {
      // Deliver the rejection through the event queue to avoid synchronous
      // re-entry into the caller.
      sim_->ScheduleAfter(0, std::move(event.rejected));
    }
    return;
  }
  AccountQueueLength();
  queue_.push_back(QueuedEvent{std::move(event), sim_->now()});
  MaybeStartService();
}

void Stage::MaybeStartService() {
  while (busy_ < threads_ && !queue_.empty()) {
    AccountQueueLength();
    QueuedEvent qe = std::move(queue_.front());
    queue_.pop_front();
    StartService(std::move(qe));
  }
}

void Stage::StartService(QueuedEvent&& qe) {
  busy_++;
  const SimTime now = sim_->now();
  window_.sum_queue_wait += static_cast<double>(now - qe.enqueue_time);
  uint32_t slot;
  if (in_service_free_ != kNilIndex) {
    slot = in_service_free_;
    in_service_free_ = in_service_[slot].free_next;
  } else {
    in_service_.emplace_back();
    slot = static_cast<uint32_t>(in_service_.size() - 1);
  }
  InService& s = in_service_[slot];
  s.service_start = now;
  s.compute = qe.event.compute;
  s.blocking = qe.event.blocking;
  s.done = std::move(qe.event.done);
  cpu_->BeginCompute(s.compute, [this, slot] { OnComputeDone(slot); });
}

void Stage::OnComputeDone(uint32_t slot) {
  if (in_service_[slot].blocking > 0) {
    sim_->ScheduleAfter(in_service_[slot].blocking, [this, slot] { FinishService(slot); });
    return;
  }
  FinishService(slot);
}

void Stage::FinishService(uint32_t slot) {
  // Copy the record out and recycle the slot before any callback runs: both
  // MaybeStartService and the continuation can start new service (and thus
  // grow or reuse the slab).
  const SimTime service_start = in_service_[slot].service_start;
  const SimDuration compute = in_service_[slot].compute;
  const SimDuration blocking = in_service_[slot].blocking;
  InlineTask done = std::move(in_service_[slot].done);
  in_service_[slot].free_next = in_service_free_;
  in_service_free_ = slot;

  const SimTime now = sim_->now();
  window_.completions++;
  total_completions_++;
  window_.sum_wallclock += static_cast<double>(now - service_start);
  window_.sum_compute += static_cast<double>(compute);
  window_.sum_blocking += static_cast<double>(blocking);
  ACTOP_CHECK(busy_ > 0);
  busy_--;
  // Start the next queued event before running the continuation so that a
  // continuation enqueueing into this same stage observes a consistent state.
  MaybeStartService();
  if (done) {
    done();
  }
}

void Stage::set_threads(int threads) {
  ACTOP_CHECK(threads >= 1);
  threads_ = threads;
  MaybeStartService();
}

StageWindow Stage::TakeWindow() {
  AccountQueueLength();
  StageWindow out = window_;
  window_ = StageWindow{};
  return out;
}

}  // namespace actop
