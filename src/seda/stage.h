// One SEDA stage: a FIFO event queue drained by a fixed-size thread pool.
//
// Threads of every stage on a server share that server's CpuModel, so a
// stage's observed service time depends on the whole server's thread
// allocation and load — exactly the coupling the paper's thread-allocation
// optimizer exploits.
//
// Per-event accounting follows the paper's Figure 9: an event spends
//   queue wait  -> waiting for a stage thread,
//   x (compute) -> demanded CPU time,
//   r (ready)   -> extra wallclock while computing, due to core sharing and
//                  over-subscription overhead,
//   w (blocking)-> synchronous blocking (no CPU),
// and the stage records z = x + r + w per completion, plus window aggregates
// that the parameter estimator (src/core/param_estimator.h) consumes.

#ifndef SRC_SEDA_STAGE_H_
#define SRC_SEDA_STAGE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/inline_task.h"
#include "src/common/ring_buffer.h"
#include "src/common/sim_time.h"
#include "src/seda/cpu.h"
#include "src/sim/simulation.h"

namespace actop {

// Work item submitted to a stage. Move-only: continuations are InlineTask,
// so typical captures ride inline through the queue and the event engine
// without heap traffic.
struct StageEvent {
  SimDuration compute = 0;   // x: CPU demand
  SimDuration blocking = 0;  // w: synchronous blocking time (no CPU)
  // Continuation invoked when processing completes.
  InlineTask done;
  // Invoked instead of `done` if the event is rejected (bounded queue full).
  InlineTask rejected;
};

// Aggregates over a measurement window; all sums are nanoseconds.
struct StageWindow {
  uint64_t arrivals = 0;
  uint64_t completions = 0;
  uint64_t rejections = 0;
  double sum_queue_wait = 0.0;
  double sum_wallclock = 0.0;  // z = x + r + w summed over completions
  double sum_compute = 0.0;    // x
  double sum_blocking = 0.0;   // w (the estimator must NOT read this; it is
                               //   kept for test oracles and debugging)
  double queue_len_time_integral = 0.0;  // for time-averaged queue length

  double mean_queue_wait() const {
    return completions == 0 ? 0.0 : sum_queue_wait / static_cast<double>(completions);
  }
  double mean_wallclock() const {
    return completions == 0 ? 0.0 : sum_wallclock / static_cast<double>(completions);
  }
  double mean_compute() const {
    return completions == 0 ? 0.0 : sum_compute / static_cast<double>(completions);
  }
};

class Stage {
 public:
  // `name` is used in reports. `cpu` must outlive the stage.
  Stage(Simulation* sim, CpuModel* cpu, std::string name, int threads,
        size_t queue_capacity = std::numeric_limits<size_t>::max());

  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  // Submits an event. If the queue is at capacity the event is rejected.
  void Enqueue(StageEvent event);

  // Changes the thread-pool size. Shrinking lets in-service events drain.
  // The caller (Server) is responsible for updating the CpuModel's
  // total-thread count across all stages.
  void set_threads(int threads);
  int threads() const { return threads_; }

  size_t queue_length() const { return queue_.size(); }
  int busy_threads() const { return busy_; }
  const std::string& name() const { return name_; }

  // Returns the aggregates accumulated since the previous TakeWindow() (or
  // construction) and starts a new window.
  StageWindow TakeWindow();

  // Read-only view of the current (incomplete) window.
  const StageWindow& current_window() const { return window_; }

  // Lifetime totals (never reset).
  uint64_t total_completions() const { return total_completions_; }
  uint64_t total_rejections() const { return total_rejections_; }

 private:
  static constexpr uint32_t kNilIndex = 0xFFFFFFFFu;

  struct QueuedEvent {
    StageEvent event;
    SimTime enqueue_time;
  };

  // One event being serviced by a stage thread. Parked in a slab so the
  // compute/blocking continuations capture only [this, slot] and stay inline
  // in the event engine; slots recycle through a free list (free_next).
  struct InService {
    SimTime service_start = 0;
    SimDuration compute = 0;
    SimDuration blocking = 0;
    InlineTask done;
    uint32_t free_next = kNilIndex;
  };

  void MaybeStartService();
  void StartService(QueuedEvent&& qe);
  void OnComputeDone(uint32_t slot);
  void FinishService(uint32_t slot);
  void AccountQueueLength();

  Simulation* sim_;
  CpuModel* cpu_;
  std::string name_;
  int threads_;
  size_t queue_capacity_;
  // Ring, not deque: steady-state enqueue/dequeue touches one contiguous
  // array and never allocates once the queue has seen its high-water mark.
  RingBuffer<QueuedEvent> queue_;
  std::vector<InService> in_service_;
  uint32_t in_service_free_ = kNilIndex;
  int busy_ = 0;
  StageWindow window_;
  SimTime last_queue_account_ = 0;
  uint64_t total_completions_ = 0;
  uint64_t total_rejections_ = 0;
};

}  // namespace actop

#endif  // SRC_SEDA_STAGE_H_
