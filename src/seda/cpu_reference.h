// Retained seed implementation of the processor-sharing CPU model, used as
// the differential-test oracle and benchmark baseline for the virtual-time
// rewrite in cpu.{h,cc}. Do not optimize: this preserves the seed's
// per-event O(n) accounting — the per-job remaining-demand decrement loop in
// AdvanceTo, the full min-remaining rescan in Reschedule, and the
// Cancel + ScheduleAfter churn of the pending completion on every arrival —
// so the rewrite can be checked completion-for-completion against it
// (tests/seda/cpu_differential_test.cc) and timed against it
// (bench/bench_cluster.cc, scenarios cpu_*).
//
// Semantics and epsilon (0.5 ns done threshold) are identical to the
// optimized model; both must keep producing the same completion times and
// orders up to the floating-point tolerance documented in the differential
// test.

#ifndef SRC_SEDA_CPU_REFERENCE_H_
#define SRC_SEDA_CPU_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "src/common/inline_task.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop::sedaref {

// Seed CpuModel: exact event-driven egalitarian processor sharing with
// per-job remaining-demand accounting. See src/seda/cpu.h for the shared
// model documentation (dispatch quantum, sharing rate, GC pauses).
class CpuModel {
 public:
  CpuModel(Simulation* sim, int cores, double kappa, SimDuration quantum = 0, uint64_t seed = 1);

  CpuModel(const CpuModel&) = delete;
  CpuModel& operator=(const CpuModel&) = delete;

  void BeginCompute(SimDuration demand, InlineTask done);

  void set_total_threads(int total_threads);
  int total_threads() const { return total_threads_; }

  int cores() const { return cores_; }
  int active_jobs() const { return num_jobs_; }
  int runnable_jobs() const { return ready_jobs_ + num_jobs_; }

  double busy_core_nanos() const;
  double current_rate() const { return Rate(); }

  void EnablePauses(SimDuration mean_interval, SimDuration base_duration,
                    double per_thread_factor, double exponent = 1.0);

  bool paused() const { return paused_; }

 private:
  static constexpr uint32_t kNilIndex = 0xFFFFFFFFu;

  // Jobs live in a slab threaded by an intrusive doubly-linked list in
  // insertion order (OnCompletion collects finished callbacks in that order,
  // which is part of deterministic dispatch); freed slots recycle through a
  // free list over `next`. A parked job (dispatch-latency wait) occupies a
  // slot but is not yet linked.
  struct Job {
    double remaining = 0.0;  // ns of demanded core time still owed
    InlineTask done;
    uint32_t prev = kNilIndex;
    uint32_t next = kNilIndex;  // doubles as the free-list link
  };

  double Efficiency() const;
  double Rate() const;
  void AdvanceTo(SimTime t);
  void Reschedule();
  void OnCompletion();
  uint32_t AllocJob(SimDuration demand, InlineTask done);
  void LinkJob(uint32_t slot);
  void StartParkedJob(uint32_t slot);
  void SchedulePause();
  void BeginPause();
  void EndPause();

  Simulation* sim_;
  const int cores_;
  const double kappa_;
  const SimDuration quantum_;
  Rng rng_;
  int total_threads_;
  int ready_jobs_ = 0;
  std::vector<Job> jobs_;
  uint32_t jobs_head_ = kNilIndex;  // oldest linked job
  uint32_t jobs_tail_ = kNilIndex;
  uint32_t jobs_free_ = kNilIndex;
  int num_jobs_ = 0;
  std::vector<InlineTask> done_scratch_;
  SimTime last_update_ = 0;
  EventId pending_completion_ = 0;
  double busy_core_nanos_ = 0.0;

  bool pauses_enabled_ = false;
  bool paused_ = false;
  SimDuration pause_mean_interval_ = 0;
  SimDuration pause_base_duration_ = 0;
  double pause_per_thread_factor_ = 0.0;
  double pause_exponent_ = 1.0;
};

}  // namespace actop::sedaref

#endif  // SRC_SEDA_CPU_REFERENCE_H_
