// Generic multi-stage SEDA pipeline emulator.
//
// This is the stand-alone "SEDA emulator with 6 stages" the paper uses in
// §5.1 to demonstrate the oscillation of queue-length-based thread control
// (Figure 7). Requests arrive as a Poisson process and traverse the stages
// in order; each stage has exponential per-event CPU demand and optional
// synchronous blocking time.

#ifndef SRC_SEDA_EMULATOR_H_
#define SRC_SEDA_EMULATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/seda/cpu.h"
#include "src/seda/stage.h"
#include "src/seda/thread_host.h"
#include "src/sim/simulation.h"

namespace actop {

struct EmulatorStageConfig {
  std::string name;
  SimDuration mean_compute = Micros(50);  // exponential CPU demand per event
  SimDuration mean_blocking = 0;          // exponential blocking time (0 = none)
  int initial_threads = 1;
};

struct EmulatorConfig {
  int cores = 8;
  double kappa = 0.04;             // CPU over-subscription penalty
  SimDuration dispatch_quantum = 0;  // scheduling-quantum latency (0 = off)
  double arrival_rate = 1000.0;    // requests per simulated second
  bool deterministic_service = false;  // fixed instead of exponential demands
  std::vector<EmulatorStageConfig> stages;
  uint64_t seed = 1;
};

class Emulator : public ThreadHost {
 public:
  Emulator(Simulation* sim, EmulatorConfig config);

  // Begins Poisson arrivals; call before running the simulation.
  void Start();
  // Stops generating new arrivals (in-flight requests drain).
  void Stop();

  // ThreadHost:
  int num_stages() override { return static_cast<int>(stages_.size()); }
  Stage& stage(int i) override { return *stages_[static_cast<size_t>(i)]; }
  int cores() const override { return config_.cores; }
  void ApplyThreadAllocation(const std::vector<int>& threads) override;

  CpuModel& cpu() { return *cpu_; }

  // End-to-end latency (arrival to last-stage completion), nanoseconds.
  const Histogram& latency() const { return latency_; }
  Histogram* mutable_latency() { return &latency_; }

  uint64_t completed_requests() const { return completed_; }

 private:
  void ScheduleNextArrival();
  void InjectRequest();
  void RunThroughStage(size_t index, SimTime arrival_time);
  SimDuration SampleCompute(const EmulatorStageConfig& cfg);
  SimDuration SampleBlocking(const EmulatorStageConfig& cfg);

  Simulation* sim_;
  EmulatorConfig config_;
  Rng rng_;
  std::unique_ptr<CpuModel> cpu_;
  std::vector<std::unique_ptr<Stage>> stages_;
  Histogram latency_;
  uint64_t completed_ = 0;
  bool running_ = false;
};

}  // namespace actop

#endif  // SRC_SEDA_EMULATOR_H_
