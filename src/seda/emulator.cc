#include "src/seda/emulator.h"

#include <numeric>
#include <utility>

#include "src/common/check.h"

namespace actop {

Emulator::Emulator(Simulation* sim, EmulatorConfig config)
    : sim_(sim), config_(std::move(config)), rng_(config_.seed) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(!config_.stages.empty());
  ACTOP_CHECK(config_.arrival_rate > 0.0);
  cpu_ = std::make_unique<CpuModel>(sim_, config_.cores, config_.kappa,
                                    config_.dispatch_quantum, config_.seed ^ 0x9e3779b9);
  int total_threads = 0;
  for (const auto& sc : config_.stages) {
    ACTOP_CHECK(sc.initial_threads >= 1);
    stages_.push_back(std::make_unique<Stage>(sim_, cpu_.get(), sc.name, sc.initial_threads));
    total_threads += sc.initial_threads;
  }
  cpu_->set_total_threads(total_threads);
}

void Emulator::ApplyThreadAllocation(const std::vector<int>& threads) {
  ACTOP_CHECK(threads.size() == stages_.size());
  int total = 0;
  for (size_t i = 0; i < stages_.size(); i++) {
    ACTOP_CHECK(threads[i] >= 1);
    stages_[i]->set_threads(threads[i]);
    total += threads[i];
  }
  cpu_->set_total_threads(total);
}

void Emulator::Start() {
  ACTOP_CHECK(!running_);
  running_ = true;
  ScheduleNextArrival();
}

void Emulator::Stop() { running_ = false; }

void Emulator::ScheduleNextArrival() {
  const double mean_gap_ns = 1e9 / config_.arrival_rate;
  const auto gap = static_cast<SimDuration>(rng_.NextExp(mean_gap_ns) + 0.5);
  sim_->ScheduleAfter(gap, [this] {
    if (!running_) {
      return;
    }
    InjectRequest();
    ScheduleNextArrival();
  });
}

SimDuration Emulator::SampleCompute(const EmulatorStageConfig& cfg) {
  if (cfg.mean_compute <= 0) {
    return 0;
  }
  if (config_.deterministic_service) {
    return cfg.mean_compute;
  }
  return rng_.NextExpDuration(cfg.mean_compute);
}

SimDuration Emulator::SampleBlocking(const EmulatorStageConfig& cfg) {
  if (cfg.mean_blocking <= 0) {
    return 0;
  }
  if (config_.deterministic_service) {
    return cfg.mean_blocking;
  }
  return rng_.NextExpDuration(cfg.mean_blocking);
}

void Emulator::InjectRequest() { RunThroughStage(0, sim_->now()); }

void Emulator::RunThroughStage(size_t index, SimTime arrival_time) {
  const EmulatorStageConfig& cfg = config_.stages[index];
  StageEvent ev;
  ev.compute = SampleCompute(cfg);
  ev.blocking = SampleBlocking(cfg);
  ev.done = [this, index, arrival_time] {
    if (index + 1 < stages_.size()) {
      RunThroughStage(index + 1, arrival_time);
    } else {
      completed_++;
      latency_.Record(sim_->now() - arrival_time);
    }
  };
  stages_[index]->Enqueue(std::move(ev));
}

}  // namespace actop
