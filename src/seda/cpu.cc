#include "src/seda/cpu.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace actop {

namespace {
// Jobs whose finish tag is within this much virtual service of V are
// considered complete (same threshold, in the same units, as the seed
// model's remaining-demand epsilon: virtual service is measured in ns of
// dedicated-core time, exactly like demand).
constexpr double kDoneEpsilon = 0.5;
}  // namespace

CpuModel::CpuModel(Simulation* sim, int cores, double kappa, SimDuration quantum, uint64_t seed)
    : sim_(sim),
      cores_(cores),
      kappa_(kappa),
      quantum_(quantum),
      rng_(seed),
      total_threads_(cores) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(cores >= 1);
  ACTOP_CHECK(kappa >= 0.0);
  ACTOP_CHECK(quantum >= 0);
  last_update_ = sim_->now();
}

double CpuModel::Efficiency() const {
  const int excess = std::max(0, active_jobs() - cores_);
  return 1.0 / (1.0 + kappa_ * static_cast<double>(excess));
}

double CpuModel::Rate() const {
  if (paused_) {
    return 0.0;
  }
  const int n = active_jobs();
  if (n == 0) {
    return 0.0;
  }
  const double share = std::min(1.0, static_cast<double>(cores_) / static_cast<double>(n));
  return share * Efficiency();
}

double CpuModel::BusyCores() const {
  if (paused_) {
    return static_cast<double>(cores_);
  }
  return std::min<double>(active_jobs(), cores_);
}

void CpuModel::AdvanceTo(SimTime t) {
  ACTOP_CHECK(t >= last_update_);
  const auto dt = static_cast<double>(t - last_update_);
  if (dt > 0.0) {
    if (!paused_ && !heap_.empty()) {
      vtime_ += dt * Rate();
    }
    busy_core_nanos_ += dt * BusyCores();
  }
  last_update_ = t;
}

// --- job heap ---------------------------------------------------------------
//
// Plain 4-ary min-heap over (finish tag, link seq); children of node i live
// at 4i+1..4i+4. Unlike the engine's event heap no back-pointers are needed:
// under virtual time a running job's tag never changes and jobs are never
// cancelled, so entries only enter at the bottom and leave at the root.

size_t CpuModel::MinChild(size_t first, size_t n) const {
  if (first + 4 <= n) {
    const size_t a = Before(heap_[first + 1], heap_[first]) ? first + 1 : first;
    const size_t b = Before(heap_[first + 3], heap_[first + 2]) ? first + 3 : first + 2;
    return Before(heap_[b], heap_[a]) ? b : a;
  }
  size_t best = first;
  for (size_t c = first + 1; c < n; c++) {
    if (Before(heap_[c], heap_[best])) best = c;
  }
  return best;
}

void CpuModel::SiftUp(size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) / 4;
    if (!Before(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = entry;
}

void CpuModel::SiftDown(size_t pos) {
  const HeapEntry entry = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first = 4 * pos + 1;
    if (first >= n) break;
    const size_t best = MinChild(first, n);
    if (!Before(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = entry;
}

void CpuModel::HeapPush(double finish_v, uint32_t slot) {
  ACTOP_CHECK(next_seq_ <= kMaxSeq);
  heap_.push_back(HeapEntry{finish_v, (next_seq_++ << kSlotBits) | slot});
  SiftUp(heap_.size() - 1);
}

void CpuModel::HeapPopRoot() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  heap_[0] = last;
  SiftDown(0);
}

// --- scheduling -------------------------------------------------------------

void CpuModel::Reschedule() {
  if (heap_.empty() || paused_) {
    if (pending_completion_ != 0) {
      sim_->Cancel(pending_completion_);
      pending_completion_ = 0;
    }
    return;
  }
  const double rate = Rate();
  ACTOP_CHECK(rate > 0.0);
  // The heap root holds the smallest finish tag — the seed's full
  // min-remaining rescan reduced to a peek.
  const double wait = std::max(0.0, heap_[0].finish_v - vtime_) / rate;
  const SimTime when = sim_->now() + static_cast<SimDuration>(std::ceil(wait));
  if (pending_completion_ != 0 && sim_->Reschedule(pending_completion_, when)) {
    return;
  }
  pending_completion_ = sim_->ScheduleAt(when, [this] { OnCompletion(); });
}

void CpuModel::OnCompletion() {
  pending_completion_ = 0;
  AdvanceTo(sim_->now());
  batch_scratch_.clear();
  done_scratch_.clear();
  const double cutoff = vtime_ + kDoneEpsilon;
  while (!heap_.empty() && heap_[0].finish_v <= cutoff) {
    batch_scratch_.push_back(heap_[0].key);
    HeapPopRoot();
  }
  // Key order is link-seq order, which is the seed's insertion order: ties
  // complete, free their slots, and fire their callbacks exactly as the
  // seed's in-order list sweep did.
  std::sort(batch_scratch_.begin(), batch_scratch_.end());
  for (const uint64_t key : batch_scratch_) {
    const auto slot = static_cast<uint32_t>(key & kSlotMask);
    Job& j = jobs_[slot];
    done_scratch_.push_back(std::move(j.done));
    j.free_next = jobs_free_;
    jobs_free_ = slot;
  }
  if (heap_.empty()) {
    vtime_ = 0.0;  // idle: rebase so V never outgrows double precision
  }
  Reschedule();
  for (InlineTask& fn : done_scratch_) {
    fn();
  }
  done_scratch_.clear();
}

void CpuModel::BeginCompute(SimDuration demand, InlineTask done) {
  ACTOP_CHECK(static_cast<bool>(done));
  if (demand <= 0) {
    sim_->ScheduleAfter(0, std::move(done));
    return;
  }
  const uint32_t slot = AllocJob(demand, std::move(done));
  const int over = runnable_jobs() + 1 - cores_;
  if (quantum_ > 0 && over > 0) {
    const double mean = static_cast<double>(quantum_) * static_cast<double>(over) /
                        static_cast<double>(cores_);
    const auto delay = static_cast<SimDuration>(rng_.NextExp(mean) + 0.5);
    ready_jobs_++;
    sim_->ScheduleAfter(delay, [this, slot] {
      ready_jobs_--;
      StartParkedJob(slot);
    });
    return;
  }
  StartParkedJob(slot);
}

uint32_t CpuModel::AllocJob(SimDuration demand, InlineTask done) {
  uint32_t slot;
  if (jobs_free_ != kNilIndex) {
    slot = jobs_free_;
    jobs_free_ = jobs_[slot].free_next;
  } else {
    // Slot indices must fit the low kSlotBits of a heap key.
    ACTOP_CHECK(jobs_.size() < (1ULL << kSlotBits));
    jobs_.emplace_back();
    slot = static_cast<uint32_t>(jobs_.size() - 1);
  }
  Job& j = jobs_[slot];
  j.finish_v = static_cast<double>(demand);  // raw demand until linked
  j.done = std::move(done);
  j.free_next = kNilIndex;
  return slot;
}

void CpuModel::StartParkedJob(uint32_t slot) {
  AdvanceTo(sim_->now());
  Job& j = jobs_[slot];
  j.finish_v = vtime_ + j.finish_v;  // demand -> finish tag at link time
  HeapPush(j.finish_v, slot);
  Reschedule();
}

void CpuModel::set_total_threads(int total_threads) {
  ACTOP_CHECK(total_threads >= 1);
  total_threads_ = total_threads;
}

void CpuModel::EnablePauses(SimDuration mean_interval, SimDuration base_duration,
                            double per_thread_factor, double exponent) {
  ACTOP_CHECK(mean_interval > 0);
  ACTOP_CHECK(base_duration >= 0);
  ACTOP_CHECK(per_thread_factor >= 0.0);
  ACTOP_CHECK(exponent >= 1.0);
  ACTOP_CHECK(!pauses_enabled_);
  pauses_enabled_ = true;
  pause_mean_interval_ = mean_interval;
  pause_base_duration_ = base_duration;
  pause_per_thread_factor_ = per_thread_factor;
  pause_exponent_ = exponent;
  SchedulePause();
}

void CpuModel::SchedulePause() {
  const auto gap = static_cast<SimDuration>(
      rng_.NextExp(static_cast<double>(pause_mean_interval_)) + 0.5);
  sim_->ScheduleAfter(gap, [this] { BeginPause(); });
}

void CpuModel::BeginPause() {
  AdvanceTo(sim_->now());
  paused_ = true;
  Reschedule();  // cancels the pending completion while paused
  const int excess = std::max(0, total_threads_ - cores_);
  const double growth =
      std::pow(1.0 + pause_per_thread_factor_ * static_cast<double>(excess), pause_exponent_);
  const auto duration =
      static_cast<SimDuration>(static_cast<double>(pause_base_duration_) * growth);
  sim_->ScheduleAfter(duration, [this] { EndPause(); });
}

void CpuModel::EndPause() {
  AdvanceTo(sim_->now());
  paused_ = false;
  Reschedule();
  SchedulePause();
}

double CpuModel::busy_core_nanos() const {
  const auto dt = static_cast<double>(sim_->now() - last_update_);
  return busy_core_nanos_ + dt * BusyCores();
}

}  // namespace actop
