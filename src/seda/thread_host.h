// Interface between a SEDA server and a thread-allocation controller.
//
// Both the generic Emulator (used for the paper's Figure 7 experiment) and
// the full actor-runtime Server implement this, so the controllers in
// src/core (closed-form allocator, queue-length baseline) are written once.

#ifndef SRC_SEDA_THREAD_HOST_H_
#define SRC_SEDA_THREAD_HOST_H_

#include <vector>

#include "src/seda/stage.h"

namespace actop {

class ThreadHost {
 public:
  virtual ~ThreadHost() = default;

  // Number of SEDA stages (K in the paper's notation).
  virtual int num_stages() = 0;

  // Stage accessor; index in [0, num_stages()).
  virtual Stage& stage(int i) = 0;

  // Number of physical cores (p in the paper's notation).
  virtual int cores() const = 0;

  // Applies a new thread allocation (one entry per stage, each >= 1) and
  // updates the shared CPU model's total thread count.
  virtual void ApplyThreadAllocation(const std::vector<int>& threads) = 0;

  // Current allocation.
  std::vector<int> CurrentThreads() {
    std::vector<int> out;
    out.reserve(static_cast<size_t>(num_stages()));
    for (int i = 0; i < num_stages(); i++) {
      out.push_back(stage(i).threads());
    }
    return out;
  }
};

}  // namespace actop

#endif  // SRC_SEDA_THREAD_HOST_H_
