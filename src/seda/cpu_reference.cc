// Retained seed implementation — see cpu_reference.h. Mirrors the seed's
// cpu.cc line for line (only the namespace differs); keep it frozen.

#include "src/seda/cpu_reference.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/check.h"

namespace actop::sedaref {

namespace {
// Jobs whose remaining demand falls below this are considered complete.
constexpr double kDoneEpsilon = 0.5;
}  // namespace

CpuModel::CpuModel(Simulation* sim, int cores, double kappa, SimDuration quantum, uint64_t seed)
    : sim_(sim),
      cores_(cores),
      kappa_(kappa),
      quantum_(quantum),
      rng_(seed),
      total_threads_(cores) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(cores >= 1);
  ACTOP_CHECK(kappa >= 0.0);
  ACTOP_CHECK(quantum >= 0);
  last_update_ = sim_->now();
}

double CpuModel::Efficiency() const {
  const int excess = std::max(0, num_jobs_ - cores_);
  return 1.0 / (1.0 + kappa_ * static_cast<double>(excess));
}

double CpuModel::Rate() const {
  if (paused_) {
    return 0.0;
  }
  if (num_jobs_ == 0) {
    return 0.0;
  }
  const double share = std::min(1.0, static_cast<double>(cores_) / static_cast<double>(num_jobs_));
  return share * Efficiency();
}

void CpuModel::AdvanceTo(SimTime t) {
  ACTOP_CHECK(t >= last_update_);
  const auto dt = static_cast<double>(t - last_update_);
  if (dt > 0.0) {
    if (paused_) {
      busy_core_nanos_ += dt * static_cast<double>(cores_);
    } else if (num_jobs_ > 0) {
      const double rate = Rate();
      for (uint32_t i = jobs_head_; i != kNilIndex; i = jobs_[i].next) {
        jobs_[i].remaining -= dt * rate;
      }
      busy_core_nanos_ += dt * std::min<double>(num_jobs_, cores_);
    }
  }
  last_update_ = t;
}

void CpuModel::Reschedule() {
  if (pending_completion_ != 0) {
    sim_->Cancel(pending_completion_);
    pending_completion_ = 0;
  }
  if (num_jobs_ == 0 || paused_) {
    return;
  }
  double min_remaining = jobs_[jobs_head_].remaining;
  for (uint32_t i = jobs_[jobs_head_].next; i != kNilIndex; i = jobs_[i].next) {
    min_remaining = std::min(min_remaining, jobs_[i].remaining);
  }
  const double rate = Rate();
  ACTOP_CHECK(rate > 0.0);
  const double wait = std::max(0.0, min_remaining) / rate;
  pending_completion_ =
      sim_->ScheduleAfter(static_cast<SimDuration>(std::ceil(wait)), [this] { OnCompletion(); });
}

void CpuModel::OnCompletion() {
  pending_completion_ = 0;
  AdvanceTo(sim_->now());
  done_scratch_.clear();
  for (uint32_t i = jobs_head_; i != kNilIndex;) {
    const uint32_t next = jobs_[i].next;
    if (jobs_[i].remaining <= kDoneEpsilon) {
      done_scratch_.push_back(std::move(jobs_[i].done));
      Job& j = jobs_[i];
      if (j.prev != kNilIndex) {
        jobs_[j.prev].next = j.next;
      } else {
        jobs_head_ = j.next;
      }
      if (j.next != kNilIndex) {
        jobs_[j.next].prev = j.prev;
      } else {
        jobs_tail_ = j.prev;
      }
      j.next = jobs_free_;
      jobs_free_ = i;
      num_jobs_--;
    }
    i = next;
  }
  Reschedule();
  for (InlineTask& fn : done_scratch_) {
    fn();
  }
  done_scratch_.clear();
}

void CpuModel::BeginCompute(SimDuration demand, InlineTask done) {
  ACTOP_CHECK(static_cast<bool>(done));
  if (demand <= 0) {
    sim_->ScheduleAfter(0, std::move(done));
    return;
  }
  const uint32_t slot = AllocJob(demand, std::move(done));
  const int over = runnable_jobs() + 1 - cores_;
  if (quantum_ > 0 && over > 0) {
    const double mean = static_cast<double>(quantum_) * static_cast<double>(over) /
                        static_cast<double>(cores_);
    const auto delay = static_cast<SimDuration>(rng_.NextExp(mean) + 0.5);
    ready_jobs_++;
    sim_->ScheduleAfter(delay, [this, slot] {
      ready_jobs_--;
      StartParkedJob(slot);
    });
    return;
  }
  StartParkedJob(slot);
}

uint32_t CpuModel::AllocJob(SimDuration demand, InlineTask done) {
  uint32_t slot;
  if (jobs_free_ != kNilIndex) {
    slot = jobs_free_;
    jobs_free_ = jobs_[slot].next;
  } else {
    jobs_.emplace_back();
    slot = static_cast<uint32_t>(jobs_.size() - 1);
  }
  Job& j = jobs_[slot];
  j.remaining = static_cast<double>(demand);
  j.done = std::move(done);
  j.prev = kNilIndex;
  j.next = kNilIndex;
  return slot;
}

void CpuModel::LinkJob(uint32_t slot) {
  Job& j = jobs_[slot];
  j.prev = jobs_tail_;
  j.next = kNilIndex;
  if (jobs_tail_ != kNilIndex) {
    jobs_[jobs_tail_].next = slot;
  } else {
    jobs_head_ = slot;
  }
  jobs_tail_ = slot;
  num_jobs_++;
}

void CpuModel::StartParkedJob(uint32_t slot) {
  AdvanceTo(sim_->now());
  LinkJob(slot);
  Reschedule();
}

void CpuModel::set_total_threads(int total_threads) {
  ACTOP_CHECK(total_threads >= 1);
  total_threads_ = total_threads;
}

void CpuModel::EnablePauses(SimDuration mean_interval, SimDuration base_duration,
                            double per_thread_factor, double exponent) {
  ACTOP_CHECK(mean_interval > 0);
  ACTOP_CHECK(base_duration >= 0);
  ACTOP_CHECK(per_thread_factor >= 0.0);
  ACTOP_CHECK(exponent >= 1.0);
  ACTOP_CHECK(!pauses_enabled_);
  pauses_enabled_ = true;
  pause_mean_interval_ = mean_interval;
  pause_base_duration_ = base_duration;
  pause_per_thread_factor_ = per_thread_factor;
  pause_exponent_ = exponent;
  SchedulePause();
}

void CpuModel::SchedulePause() {
  const auto gap = static_cast<SimDuration>(
      rng_.NextExp(static_cast<double>(pause_mean_interval_)) + 0.5);
  sim_->ScheduleAfter(gap, [this] { BeginPause(); });
}

void CpuModel::BeginPause() {
  AdvanceTo(sim_->now());
  paused_ = true;
  Reschedule();  // cancels the pending completion while paused
  const int excess = std::max(0, total_threads_ - cores_);
  const double growth =
      std::pow(1.0 + pause_per_thread_factor_ * static_cast<double>(excess), pause_exponent_);
  const auto duration =
      static_cast<SimDuration>(static_cast<double>(pause_base_duration_) * growth);
  sim_->ScheduleAfter(duration, [this] { EndPause(); });
}

void CpuModel::EndPause() {
  AdvanceTo(sim_->now());
  paused_ = false;
  Reschedule();
  SchedulePause();
}

double CpuModel::busy_core_nanos() const {
  double busy = busy_core_nanos_;
  const auto dt = static_cast<double>(sim_->now() - last_update_);
  if (dt > 0.0) {
    if (paused_) {
      busy += dt * static_cast<double>(cores_);
    } else if (num_jobs_ > 0) {
      busy += dt * std::min<double>(num_jobs_, cores_);
    }
  }
  return busy;
}

}  // namespace actop::sedaref
