// Processor-sharing CPU model for a simulated server.
//
// A server has `cores` physical processors shared by all SEDA-stage threads.
// Starting a computation has two parts:
//
//  1. Dispatch (ready-state) latency: when more threads are runnable than
//     there are cores, a newly runnable thread waits for a scheduling
//     quantum. The delay is sampled exponentially with mean
//         quantum * max(0, runnable - cores) / cores.
//     This is the dominant latency term in SEDA servers with per-stage
//     thread pools (the paper's Figure 4: queue/ready time dwarfs the
//     microsecond-scale processing) and is what makes over-allocation of
//     threads expensive (Figure 5).
//
//  2. Processor sharing: computing jobs progress at rate
//         min(1, cores / computing) / (1 + kappa * max(0, computing - cores))
//     where the second factor models context-switch and cache-thrash
//     overhead. The sharing is exact (event-driven): whenever the set of
//     running computations changes, remaining demands are advanced and the
//     next completion is re-scheduled.
//
// The ready-state delay plus sharing stretch is exactly the r (ready time)
// of the paper's Figure 9; blocking time w is modeled at the Stage level.
//
// Optionally the CPU models managed-runtime (GC) pauses: stop-the-world
// events at exponential intervals whose duration grows with the number of
// allocated threads (suspending more threads takes longer and more thread
// stacks mean more GC roots). Pauses create the backlog spikes that make a
// SEDA server's latency so sensitive to its thread allocation — the
// phenomenon behind the paper's Figures 4 and 5.

#ifndef SRC_SEDA_CPU_H_
#define SRC_SEDA_CPU_H_

#include <cstdint>
#include <vector>

#include "src/common/inline_task.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop {

class CpuModel {
 public:
  // kappa: per-excess-thread efficiency penalty; quantum: scheduling quantum
  // driving dispatch latency (0 disables it); seed: for the dispatch-delay
  // sampler (see file comment).
  CpuModel(Simulation* sim, int cores, double kappa, SimDuration quantum = 0, uint64_t seed = 1);

  CpuModel(const CpuModel&) = delete;
  CpuModel& operator=(const CpuModel&) = delete;

  // Starts a computation with the given CPU demand (in ns of dedicated-core
  // time). `done` runs when the computation completes; the wallclock taken is
  // >= demand and depends on concurrent load. Returns an opaque job count.
  void BeginCompute(SimDuration demand, InlineTask done);

  // Total threads allocated on this server (across all stages). Bookkeeping
  // only: the over-subscription penalty depends on *active* computations
  // (allocated-but-idle threads are parked and cost nothing).
  void set_total_threads(int total_threads);
  int total_threads() const { return total_threads_; }

  int cores() const { return cores_; }
  // Jobs currently computing (on-CPU, sharing cores).
  int active_jobs() const { return num_jobs_; }
  // Jobs runnable: waiting for a scheduling quantum plus computing.
  int runnable_jobs() const { return ready_jobs_ + num_jobs_; }

  // Busy core-nanoseconds accumulated since construction. `utilization` over
  // a window is (busy_core_nanos delta) / (cores * window).
  // Time stretched by the over-subscription penalty counts as busy: the
  // wasted cycles are real CPU work (context switches) in the modeled system.
  double busy_core_nanos() const;

  // Current per-job progress rate in (0, 1]; exposed for tests.
  double current_rate() const { return Rate(); }

  // Enables stop-the-world pauses: exponential inter-pause intervals with
  // the given mean; each pause lasts
  //   base_duration * (1 + per_thread_factor * max(0, total_threads-cores))^exponent
  // (suspension cost scales with threads; heap live-set scan superlinearly
  // with in-flight work). During a pause no job progresses and all cores
  // count as busy (GC work).
  void EnablePauses(SimDuration mean_interval, SimDuration base_duration,
                    double per_thread_factor, double exponent = 1.0);

  bool paused() const { return paused_; }

 private:
  static constexpr uint32_t kNilIndex = 0xFFFFFFFFu;

  // Jobs live in a slab threaded by an intrusive doubly-linked list in
  // insertion order (OnCompletion collects finished callbacks in that order,
  // which is part of deterministic dispatch); freed slots recycle through a
  // free list over `next`. A parked job (dispatch-latency wait) occupies a
  // slot but is not yet linked.
  struct Job {
    double remaining = 0.0;  // ns of demanded core time still owed
    InlineTask done;
    uint32_t prev = kNilIndex;
    uint32_t next = kNilIndex;  // doubles as the free-list link
  };

  double Efficiency() const;
  double Rate() const;  // per-job progress per wallclock ns
  void AdvanceTo(SimTime t);
  void Reschedule();
  void OnCompletion();
  uint32_t AllocJob(SimDuration demand, InlineTask done);
  void LinkJob(uint32_t slot);
  void StartParkedJob(uint32_t slot);
  void SchedulePause();
  void BeginPause();
  void EndPause();

  Simulation* sim_;
  const int cores_;
  const double kappa_;
  const SimDuration quantum_;
  Rng rng_;
  int total_threads_;
  int ready_jobs_ = 0;
  std::vector<Job> jobs_;
  uint32_t jobs_head_ = kNilIndex;  // oldest linked job
  uint32_t jobs_tail_ = kNilIndex;
  uint32_t jobs_free_ = kNilIndex;
  int num_jobs_ = 0;
  // Reused across completions so tie batches do not allocate at steady state.
  std::vector<InlineTask> done_scratch_;
  SimTime last_update_ = 0;
  EventId pending_completion_ = 0;
  double busy_core_nanos_ = 0.0;

  // GC-pause modeling.
  bool pauses_enabled_ = false;
  bool paused_ = false;
  SimDuration pause_mean_interval_ = 0;
  SimDuration pause_base_duration_ = 0;
  double pause_per_thread_factor_ = 0.0;
  double pause_exponent_ = 1.0;
};

}  // namespace actop

#endif  // SRC_SEDA_CPU_H_
