// Processor-sharing CPU model for a simulated server.
//
// A server has `cores` physical processors shared by all SEDA-stage threads.
// Starting a computation has two parts:
//
//  1. Dispatch (ready-state) latency: when more threads are runnable than
//     there are cores, a newly runnable thread waits for a scheduling
//     quantum. The delay is sampled exponentially with mean
//         quantum * max(0, runnable - cores) / cores.
//     This is the dominant latency term in SEDA servers with per-stage
//     thread pools (the paper's Figure 4: queue/ready time dwarfs the
//     microsecond-scale processing) and is what makes over-allocation of
//     threads expensive (Figure 5).
//
//  2. Processor sharing: computing jobs progress at rate
//         min(1, cores / computing) / (1 + kappa * max(0, computing - cores))
//     where the second factor models context-switch and cache-thrash
//     overhead. The sharing is exact (event-driven): whenever the set of
//     running computations changes, the next completion is re-scheduled.
//
// The ready-state delay plus sharing stretch is exactly the r (ready time)
// of the paper's Figure 9; blocking time w is modeled at the Stage level.
//
// Optionally the CPU models managed-runtime (GC) pauses: stop-the-world
// events at exponential intervals whose duration grows with the number of
// allocated threads (suspending more threads takes longer and more thread
// stacks mean more GC roots). Pauses create the backlog spikes that make a
// SEDA server's latency so sensitive to its thread allocation — the
// phenomenon behind the paper's Figures 4 and 5.
//
// Implementation: virtual-time fair queuing. Under egalitarian processor
// sharing every running job receives the identical instantaneous rate, so
// one cumulative virtual-service clock V(t) = ∫ rate(t) dt describes all of
// them: a job that starts when the clock reads V with demand d finishes when
// the clock reads V + d, regardless of how many rate changes happen in
// between. The model therefore advances a single accumulator per rate
// segment (O(1), replacing the seed's per-job remaining-demand decrement
// loop), keeps each job's immutable finish tag V_start + demand in a 4-ary
// min-heap ordered by (finish tag, link seq) (peek replaces the seed's full
// min-remaining rescan), and re-arms one standing completion event via
// Simulation::Reschedule (no Cancel + ScheduleAfter slot churn on every
// arrival). Arrival and completion are O(log n) in the number of running
// jobs; nothing on the steady-state path allocates. The retained seed
// implementation lives in cpu_reference.h (namespace sedaref) and the two
// are held equivalent by tests/seda/cpu_differential_test.cc.

#ifndef SRC_SEDA_CPU_H_
#define SRC_SEDA_CPU_H_

#include <cstdint>
#include <vector>

#include "src/common/inline_task.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop {

class CpuModel {
 public:
  // kappa: per-excess-thread efficiency penalty; quantum: scheduling quantum
  // driving dispatch latency (0 disables it); seed: for the dispatch-delay
  // sampler (see file comment).
  CpuModel(Simulation* sim, int cores, double kappa, SimDuration quantum = 0, uint64_t seed = 1);

  CpuModel(const CpuModel&) = delete;
  CpuModel& operator=(const CpuModel&) = delete;

  // Starts a computation with the given CPU demand (in ns of dedicated-core
  // time). `done` runs when the computation completes; the wallclock taken is
  // >= demand and depends on concurrent load.
  void BeginCompute(SimDuration demand, InlineTask done);

  // Total threads allocated on this server (across all stages). Bookkeeping
  // only: the over-subscription penalty depends on *active* computations
  // (allocated-but-idle threads are parked and cost nothing). Read at the
  // start of each GC pause, so a change applies from the next pause on.
  void set_total_threads(int total_threads);
  int total_threads() const { return total_threads_; }

  int cores() const { return cores_; }
  // Jobs currently computing (on-CPU, sharing cores).
  int active_jobs() const { return static_cast<int>(heap_.size()); }
  // Jobs runnable: waiting for a scheduling quantum plus computing.
  int runnable_jobs() const { return ready_jobs_ + active_jobs(); }

  // Busy core-nanoseconds accumulated since construction. `utilization` over
  // a window is (busy_core_nanos delta) / (cores * window).
  // Time stretched by the over-subscription penalty counts as busy: the
  // wasted cycles are real CPU work (context switches) in the modeled system.
  double busy_core_nanos() const;

  // Current per-job progress rate in (0, 1]; exposed for tests.
  double current_rate() const { return Rate(); }

  // Enables stop-the-world pauses: exponential inter-pause intervals with
  // the given mean; each pause lasts
  //   base_duration * (1 + per_thread_factor * max(0, total_threads-cores))^exponent
  // (suspension cost scales with threads; heap live-set scan superlinearly
  // with in-flight work). During a pause no job progresses and all cores
  // count as busy (GC work).
  void EnablePauses(SimDuration mean_interval, SimDuration base_duration,
                    double per_thread_factor, double exponent = 1.0);

  bool paused() const { return paused_; }

 private:
  static constexpr uint32_t kNilIndex = 0xFFFFFFFFu;
  // Slot index bits in a heap key; bounds simultaneous jobs per CPU at 2^24
  // (real runs peak at a few hundred — the thread allocation).
  static constexpr uint32_t kSlotBits = 24;
  static constexpr uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
  // 2^40 job links per CpuModel before the packed seq would wrap — checked.
  static constexpr uint64_t kMaxSeq = (1ULL << (64 - kSlotBits)) - 1;

  // Jobs live in a slab; freed slots recycle through a free list threaded
  // over `free_next`. A parked job (dispatch-latency wait) occupies a slot
  // but is not yet in the heap; until it links, `finish_v` holds the raw
  // demand (the finish tag can only be computed against V at link time).
  struct Job {
    double finish_v = 0.0;  // V_link + demand once linked; demand while parked
    InlineTask done;
    uint32_t free_next = kNilIndex;
  };

  // Heap entries carry the full sort key so sift operations compare within
  // the contiguous heap array (same layout discipline as the engine's event
  // heap): `key` packs the monotone link seq over the slot index, so for
  // equal finish tags key order is link order — the seed completed tied jobs
  // in insertion order, and the completion batch is sorted by this key to
  // preserve exactly that callback order.
  struct HeapEntry {
    double finish_v;
    uint64_t key;

    uint32_t slot() const { return static_cast<uint32_t>(key & kSlotMask); }
  };

  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    return a.finish_v != b.finish_v ? a.finish_v < b.finish_v : a.key < b.key;
  }

  double Efficiency() const;
  double Rate() const;  // per-job progress per wallclock ns
  // Cores actively burning cycles right now (shared by the busy accounting
  // in AdvanceTo and the mid-interval projection in busy_core_nanos()).
  double BusyCores() const;
  void AdvanceTo(SimTime t);
  void Reschedule();
  void OnCompletion();
  uint32_t AllocJob(SimDuration demand, InlineTask done);
  void StartParkedJob(uint32_t slot);
  void SchedulePause();
  void BeginPause();
  void EndPause();

  size_t MinChild(size_t first, size_t n) const;
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  void HeapPush(double finish_v, uint32_t slot);
  void HeapPopRoot();

  Simulation* sim_;
  const int cores_;
  const double kappa_;
  const SimDuration quantum_;
  Rng rng_;
  int total_threads_;
  int ready_jobs_ = 0;
  std::vector<Job> jobs_;
  uint32_t jobs_free_ = kNilIndex;
  std::vector<HeapEntry> heap_;  // running jobs, min (finish_v, seq)
  // Cumulative virtual service V(t); rebased to 0 whenever the CPU idles so
  // the accumulator never outgrows double precision within a busy period.
  double vtime_ = 0.0;
  uint64_t next_seq_ = 1;
  // Reused across completions so tie batches do not allocate at steady state.
  std::vector<uint64_t> batch_scratch_;     // popped keys, sorted to seq order
  std::vector<InlineTask> done_scratch_;
  SimTime last_update_ = 0;
  EventId pending_completion_ = 0;
  double busy_core_nanos_ = 0.0;

  // GC-pause modeling.
  bool pauses_enabled_ = false;
  bool paused_ = false;
  SimDuration pause_mean_interval_ = 0;
  SimDuration pause_base_duration_ = 0;
  double pause_per_thread_factor_ = 0.0;
  double pause_exponent_ = 1.0;
};

}  // namespace actop

#endif  // SRC_SEDA_CPU_H_
