// Figure 4: average latency breakdown for a single request on one server.
//
// Counter application, 15K req/s, 8K actors, default thread allocation (one
// thread per stage per core). The paper's breakdown: receive queue 32.87%,
// receive processing 0.19%, worker queue 24.19%, worker processing 0.29%,
// sender queue 31.25%, sender processing 0.16%, network 0.92%, other 10.13%
// — queuing delay dominates end-to-end latency.

#include <cstdio>

#include "bench/counter_common.h"
#include "src/common/flags.h"
#include "src/common/table.h"

namespace actop {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineDouble("load", 15000.0, "requests per second (paper: 15000)");
  flags.DefineInt("actors", 8000, "counter actors (paper: 8000)");
  flags.DefineInt("measure-secs", 20, "measurement window");
  flags.DefineInt("seed", 17, "random seed");
  flags.Parse(argc, argv);

  std::printf("== Figure 4: per-request latency breakdown (counter app, default threads) ==\n");
  std::printf(
      "paper reference: recv q 32.9%%/proc 0.2%% | worker q 24.2%%/proc 0.3%% | "
      "sender q 31.3%%/proc 0.2%% | network 0.9%% | other 10.1%%\n\n");

  CounterExperimentConfig cfg;
  cfg.request_rate = flags.GetDouble("load");
  cfg.num_actors = static_cast<int>(flags.GetInt("actors"));
  cfg.measure = Seconds(flags.GetInt("measure-secs"));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const CounterExperimentResult result = RunCounterExperiment(cfg);

  const char* names[] = {"receive", "worker", "server_sender", "client_sender"};
  Table t({"component", "queue share", "processing share"});
  double queue_total = 0.0;
  double proc_total = 0.0;
  for (int i = 0; i < 4; i++) {
    const auto& st = result.stages[static_cast<size_t>(i)];
    t.AddRow({names[i], FormatPercent(st.queue_share), FormatPercent(st.processing_share)});
    queue_total += st.queue_share;
    proc_total += st.processing_share;
  }
  t.AddRow({"network", FormatPercent(result.network_share), "-"});
  t.AddRow({"other (OS queuing etc.)", FormatPercent(result.other_share), "-"});
  t.Print();

  std::printf("\nqueue total %s vs processing total %s — queues dominate: %s\n",
              FormatPercent(queue_total).c_str(), FormatPercent(proc_total).c_str(),
              queue_total > 3.0 * proc_total ? "YES (matches paper)" : "NO");
  std::printf("end-to-end mean %.2f ms, median %s ms, CPU %s\n", result.latency.mean() / 1e6,
              FormatMillis(result.latency.p50()).c_str(),
              FormatPercent(result.cpu_utilization).c_str());
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
