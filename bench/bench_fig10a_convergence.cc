// Figure 10(a): partitioning algorithm convergence on Halo Presence.
//
// The fraction of actor-to-actor messages that are remote starts near the
// random-placement level (~90%) and converges to a low steady state while
// actor movements taper off to the workload's churn rate. Paper: remote
// fraction stabilizes at ~12% within ~10 minutes, movements at ~1K/minute
// (1% of actors) with a large initial burst.

#include <cstdio>

#include "bench/halo_common.h"
#include "src/common/flags.h"
#include "src/common/table.h"

namespace actop {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("players", 10000, "concurrent players (paper: 100000)");
  flags.DefineDouble("load", 4500.0, "client requests/sec (paper: 6000)");
  flags.DefineInt("warmup-secs", 60, "convergence phase shown in the series");
  flags.DefineInt("measure-secs", 40, "steady-state phase");
  flags.DefineInt("seed", 42, "random seed");
  flags.Parse(argc, argv);

  std::printf("== Figure 10(a): partitioning convergence (remote fraction, migrations) ==\n");
  std::printf("paper reference: ~90%% remote at start -> ~12%% steady; movements taper to the "
              "churn rate (time axis here is compressed 25:1 versus the paper)\n\n");

  HaloExperimentConfig cfg;
  cfg.players = static_cast<int>(flags.GetInt("players"));
  cfg.request_rate = flags.GetDouble("load");
  cfg.partitioning = true;
  cfg.warmup = Seconds(flags.GetInt("warmup-secs"));
  cfg.measure = Seconds(flags.GetInt("measure-secs"));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const HaloExperimentResult result = RunHaloExperiment(cfg);

  Table t({"t(s)", "remote msgs", "migrations/window"});
  for (const auto& w : result.windows) {
    t.AddRow({FormatDouble(ToSeconds(w.at), 0), FormatPercent(w.remote_fraction),
              std::to_string(w.migrations)});
  }
  t.Print();

  const auto& first = result.windows.front();
  const auto& last = result.windows.back();
  std::printf("\nremote fraction: %s (first window) -> %s (steady state)\n",
              FormatPercent(first.remote_fraction).c_str(),
              FormatPercent(last.remote_fraction).c_str());
  std::printf("baseline (random placement) stays at ~87%% remote on 8 servers\n");
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
