// §6.1 "Throughput improvement": peak sustainable throughput, baseline vs
// ActOp partitioning.
//
// Paper: random partitioning starts dropping requests at ~6K req/s (80% CPU);
// ActOp sustains ~12K req/s — a 2x peak-throughput improvement from doing
// less serialization work per request.
//
// Saturation criterion here: a load level is sustainable if < 1% of client
// requests time out or are shed by bounded queues and the p99 stays under a
// 1-second SLA.

#include <cstdio>

#include "bench/halo_common.h"
#include "src/common/flags.h"
#include "src/common/table.h"

namespace actop {
namespace {

struct LoadPoint {
  double load = 0.0;
  bool sustainable = false;
  double loss = 0.0;
  double util = 0.0;
  int64_t p99 = 0;
};

LoadPoint Probe(const Flags& flags, double load, bool partitioning) {
  HaloExperimentConfig cfg;
  cfg.players = static_cast<int>(flags.GetInt("players"));
  cfg.request_rate = load;
  cfg.partitioning = partitioning;
  cfg.warmup = Seconds(50);
  cfg.measure = Seconds(flags.GetInt("measure-secs"));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const HaloExperimentResult r = RunHaloExperiment(cfg);
  LoadPoint p;
  p.load = load;
  const double issued = static_cast<double>(r.completed + r.timeouts);
  p.loss = issued == 0.0 ? 1.0 : static_cast<double>(r.timeouts) / issued;
  p.util = r.cpu_utilization;
  p.p99 = r.client_latency.p99();
  p.sustainable = p.loss < 0.01 && p.p99 < Seconds(1);
  return p;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("players", 10000, "concurrent players (paper: 100000)");
  flags.DefineDouble("start-load", 4500.0, "first probed load");
  flags.DefineDouble("step", 1000.0, "load increment between probes");
  flags.DefineInt("max-probes", 6, "probes per configuration");
  flags.DefineInt("measure-secs", 25, "measurement window per probe");
  flags.DefineInt("seed", 42, "random seed");
  flags.Parse(argc, argv);

  std::printf("== Peak throughput: baseline vs ActOp partitioning (§6.1) ==\n");
  std::printf("paper reference: 6K req/s baseline vs 12K req/s with ActOp (2x)\n\n");

  Table t({"config", "load (req/s)", "loss", "p99 (ms)", "CPU", "sustainable"});
  double peak[2] = {0.0, 0.0};
  for (int mode = 0; mode < 2; mode++) {
    for (int i = 0; i < flags.GetInt("max-probes"); i++) {
      const double load = flags.GetDouble("start-load") + flags.GetDouble("step") * i;
      const LoadPoint p = Probe(flags, load, mode == 1);
      t.AddRow({mode == 0 ? "baseline" : "ActOp", FormatDouble(load, 0),
                FormatPercent(p.loss, 2), FormatMillis(p.p99), FormatPercent(p.util),
                p.sustainable ? "yes" : "NO"});
      if (p.sustainable) {
        peak[mode] = load;
      } else {
        break;  // past saturation; higher loads only get worse
      }
    }
  }
  t.Print();
  if (peak[0] > 0.0) {
    std::printf("\npeak sustainable: baseline %.0f vs ActOp %.0f req/s -> %.2fx (paper: 2x)\n",
                peak[0], peak[1], peak[1] / peak[0]);
  }
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
