// Parallel-core scaling benchmark + gate (fourth perf-gate workload).
//
// Runs the same fig10b-shaped Halo Presence experiment (both ActOp
// optimizations on, the bench_cluster cluster_fig10b shape) once per shard
// count in {1, 2, 4, 8} and reports the scaling curve: simulated
// milliseconds per wall-clock second at each point, plus each point's
// speedup over the serial (shards=1) run in the same binary. The serial run
// is the exact historical engine — ShardedEngine with one shard delegates
// byte-for-byte to Simulation::RunUntil — so "speedup_vs_serial" measures
// precisely what the conservative-window parallel core buys.
//
// The headline acceptance target is >= 3x at 8 shards. Wall-clock parallel
// speedup is a property of the host: on a machine with fewer than 8
// hardware threads the 8-shard run time-slices its workers and the target
// is unmeasurable, so the in-binary floor applies only when
// std::thread::hardware_concurrency() >= 8 (the gate prints a note and
// waives the floor otherwise — CI perf runners enforce it, 1-vCPU builders
// don't block on it).
//
// The JSON header records "threads" (the host's hardware concurrency).
// Scaling baselines are only comparable between hosts with the same
// parallelism, so --compare refuses a reference whose "threads" differs
// (and scripts/perf_gate.sh pre-checks the same field). Output is otherwise
// the line-oriented JSON of bench_engine/bench_partition/bench_cluster.
//
// Usage:
//   bench_parallel [--json=FILE] [--compare=FILE] [--gate]
//                  [--threshold=0.10] [--scale=1.0]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/halo_common.h"
#include "src/common/sim_time.h"

namespace actop {
namespace {

struct ScalePoint {
  std::string name;
  int shards = 1;
  uint64_t events = 0;   // simulated milliseconds executed
  uint64_t wall_ns = 0;  // wall-clock for the whole run
  uint64_t completed = 0;
  uint64_t timeouts = 0;

  double events_per_sec() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(events) * 1e9 / static_cast<double>(wall_ns);
  }
};

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

ScalePoint RunPoint(int shards, double scale) {
  HaloExperimentConfig config;
  config.players = 2000;
  config.request_rate = 900.0;
  config.partitioning = true;
  config.thread_optimization = true;
  config.warmup = Seconds(5);
  config.measure = std::max<SimDuration>(Seconds(1), SecondsF(10.0 * scale));
  config.seed = 42;
  config.shards = shards;

  ScalePoint out;
  out.name = "halo_shards" + std::to_string(shards);
  out.shards = shards;
  const uint64_t t0 = NowNs();
  const HaloExperimentResult result = RunHaloExperiment(config);
  out.wall_ns = NowNs() - t0;
  // Same scale-invariant unit as cluster_fig10b: one "event" is one
  // simulated millisecond of the whole run.
  out.events = static_cast<uint64_t>((config.warmup + config.measure) / Millis(1));
  out.completed = result.completed;
  out.timeouts = result.timeouts;
  return out;
}

// Pulls `"key": <number>` out of a one-scenario-per-line JSON file for the
// line whose "name" matches (same contract as the other bench gates).
bool LookupRef(const std::string& ref_text, const std::string& name, const std::string& key,
               double* value) {
  std::istringstream in(ref_text);
  std::string line;
  const std::string name_tag = "\"name\": \"" + name + "\"";
  const std::string key_tag = "\"" + key + "\": ";
  while (std::getline(in, line)) {
    if (line.find(name_tag) == std::string::npos) {
      continue;
    }
    const size_t kat = line.find(key_tag);
    if (kat == std::string::npos) {
      return false;
    }
    *value = std::strtod(line.c_str() + kat + key_tag.size(), nullptr);
    return true;
  }
  return false;
}

// Top-level `"key": <number>` (header fields, outside the scenarios array).
bool LookupHeader(const std::string& ref_text, const std::string& key, double* value) {
  const std::string key_tag = "\"" + key + "\": ";
  const size_t at = ref_text.find(key_tag);
  if (at == std::string::npos) {
    return false;
  }
  *value = std::strtod(ref_text.c_str() + at + key_tag.size(), nullptr);
  return true;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) {
  using namespace actop;

  std::string json_path;
  std::string compare_path;
  bool gate = false;
  double threshold = 0.10;
  double scale = 1.0;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--compare=", 0) == 0) {
      compare_path = arg.substr(10);
    } else if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::strtod(arg.c_str() + 8, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel [--json=FILE] [--compare=FILE] [--gate] "
                   "[--threshold=0.10] [--scale=1.0]\n");
      return 2;
    }
  }

  const unsigned hw_threads = std::thread::hardware_concurrency();

  std::string ref_text;
  if (!compare_path.empty()) {
    std::ifstream in(compare_path);
    if (!in) {
      std::fprintf(stderr, "bench_parallel: cannot read reference %s\n", compare_path.c_str());
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    ref_text = os.str();
    // A scaling baseline recorded on a host with different parallelism is
    // not comparable: more cores legitimately raise every parallel point.
    double ref_threads = 0.0;
    if (!LookupHeader(ref_text, "threads", &ref_threads)) {
      std::fprintf(stderr,
                   "bench_parallel: reference %s has no \"threads\" header field; "
                   "refusing to compare a scaling baseline of unknown host parallelism\n",
                   compare_path.c_str());
      return 2;
    }
    if (static_cast<unsigned>(ref_threads) != hw_threads) {
      std::fprintf(stderr,
                   "bench_parallel: reference %s was recorded with threads=%u but this "
                   "host has %u hardware threads; scaling curves are only comparable "
                   "at equal parallelism — re-record the baseline on this host\n",
                   compare_path.c_str(), static_cast<unsigned>(ref_threads), hw_threads);
      return 2;
    }
  }

  std::vector<ScalePoint> points;
  for (int shards : {1, 2, 4, 8}) {
    points.push_back(RunPoint(shards, scale));
  }
  const double serial_wall = static_cast<double>(points[0].wall_ns);

  double speedup_at_8 = 0.0;
  int regressions = 0;
  std::ostringstream body;
  body << "{\n  \"bench\": \"parallel\",\n  \"schema_version\": 1,\n";
#ifdef NDEBUG
  body << "  \"assertions\": false,\n";
#else
  body << "  \"assertions\": true,\n";
#endif
  body << "  \"threads\": " << hw_threads << ",\n";
  body << "  \"scale\": " << scale << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < points.size(); i++) {
    const ScalePoint& p = points[i];
    const double speedup = p.wall_ns == 0 ? 0.0 : serial_wall / static_cast<double>(p.wall_ns);
    if (p.shards == 8) {
      speedup_at_8 = speedup;
    }
    double ref_eps = 0.0;
    const bool have_ref =
        !ref_text.empty() && LookupRef(ref_text, p.name, "events_per_sec", &ref_eps) &&
        ref_eps > 0.0;
    const double vs_ref = have_ref ? p.events_per_sec() / ref_eps : 0.0;
    if (have_ref && vs_ref < 1.0 - threshold) {
      regressions++;
      std::fprintf(stderr, "PERF REGRESSION: %s %.0f events/s vs ref %.0f (x%.3f < %.3f)\n",
                   p.name.c_str(), p.events_per_sec(), ref_eps, vs_ref, 1.0 - threshold);
    }
    char buf[64];
    body << "    {\"name\": \"" << p.name << "\", \"shards\": " << p.shards
         << ", \"events\": " << p.events << ", \"wall_ns\": " << p.wall_ns;
    std::snprintf(buf, sizeof(buf), "%.0f", p.events_per_sec());
    body << ", \"events_per_sec\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", speedup);
    body << ", \"speedup_vs_serial\": " << buf;
    body << ", \"completed\": " << p.completed << ", \"timeouts\": " << p.timeouts;
    if (have_ref) {
      std::snprintf(buf, sizeof(buf), "%.3f", vs_ref);
      body << ", \"speedup_vs_ref\": " << buf;
    }
    body << "}" << (i + 1 < points.size() ? ",\n" : "\n");
    std::fprintf(stderr, "%-14s %10.0f sim-ms/s  x%.3f vs serial  (%llu calls, %llu timeouts)\n",
                 p.name.c_str(), p.events_per_sec(), speedup,
                 static_cast<unsigned long long>(p.completed),
                 static_cast<unsigned long long>(p.timeouts));
  }
  body << "  ],\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", speedup_at_8);
    body << "  \"speedup_at_8_shards\": " << buf << "\n";
  }
  body << "}\n";
  std::fprintf(stderr, "speedup at 8 shards: x%.2f (host threads: %u)\n", speedup_at_8,
               hw_threads);

  const std::string text = body.str();
  std::fputs(text.c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << text;
  }

  int failures = 0;
  if (gate && regressions > 0) {
    std::fprintf(stderr, "perf gate: %d point(s) regressed beyond %.0f%%\n", regressions,
                 threshold * 100.0);
    failures++;
  }
  if (gate) {
    if (hw_threads >= 8) {
      if (speedup_at_8 < 3.0) {
        std::fprintf(stderr,
                     "perf gate: speedup at 8 shards x%.2f below the 3.0x floor "
                     "(host has %u hardware threads)\n",
                     speedup_at_8, hw_threads);
        failures++;
      }
    } else {
      std::fprintf(stderr,
                   "perf gate: 3x-at-8-shards floor waived — host has %u hardware "
                   "threads (< 8); the 8-shard run time-slices its workers here\n",
                   hw_threads);
    }
  }
  return failures > 0 ? 1 : 0;
}
