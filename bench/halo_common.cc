#include "bench/halo_common.h"

#include "src/common/table.h"
#include "src/sim/simulation.h"

namespace actop {

ClusterConfig MakeHaloClusterConfig(const HaloExperimentConfig& config) {
  ClusterConfig cfg;
  cfg.num_servers = config.num_servers;
  cfg.seed = config.seed;
  cfg.enable_partitioning = config.partitioning;
  // Scaled from the paper's one-minute exchange rate limit by the same 1:25
  // per-game time factor as the workload (see HaloWorkloadConfig).
  cfg.partition.exchange_period = Seconds(1);
  cfg.partition.exchange_min_gap = Seconds(1);
  cfg.partition.max_peers_per_round = 4;
  cfg.partition.pairwise.candidate_set_size = 256;
  cfg.partition.pairwise.balance_delta = 200;
  cfg.partition.edge_sample_capacity = 16384;
  cfg.partition.edge_decay_period = Seconds(10);
  // Plan through the persistent CSR arena: byte-identical decisions
  // (tests/runtime/arena_planner_test.cc pins both plan- and decide-side
  // equality plus an end-to-end placement digest), so every recorded Halo
  // baseline stays comparable, while steady-state control-plane work stops
  // allocating — the fig10b allocs/event ratchet and the 10M-actor
  // bytes/actor ceiling both lean on this.
  cfg.partition.use_arena_planner = true;
  cfg.enable_thread_optimization = config.thread_optimization;
  cfg.thread_controller.period = Seconds(1);
  cfg.thread_controller.eta = 100e-6;  // the paper's calibrated η
  return cfg;
}

HaloWorkloadConfig MakeHaloWorkloadConfig(const HaloExperimentConfig& config) {
  HaloWorkloadConfig w;
  w.target_players = config.players;
  w.idle_pool_target = config.players / 100;  // the paper's 1% matchmaking pool
  w.request_rate = config.request_rate;
  w.seed = config.seed ^ 0x517cc1b7;
  // Game-status payloads: presence snapshots are heavyweight compared to the
  // Counter micro-benchmark's messages (calibrated; see EXPERIMENTS.md).
  w.request_bytes = 800;
  w.status_bytes = 1600;
  w.update_bytes = 1200;
  return w;
}

HaloExperimentResult RunHaloExperiment(const HaloExperimentConfig& config) {
  const ClusterConfig cluster_config = MakeHaloClusterConfig(config);
  ShardedEngineConfig engine_config;
  engine_config.shards = config.shards;
  // Lookahead = the network's one-way latency: the conservative window bound
  // that makes cross-shard messages arrive beyond the running window.
  engine_config.lookahead = cluster_config.network.one_way_latency;
  ShardedEngine engine(engine_config);
  Cluster cluster(&engine, cluster_config);
  HaloWorkload halo(&cluster, MakeHaloWorkloadConfig(config));
  halo.Start();
  cluster.StartOptimizers();

  HaloExperimentResult result;

  auto snapshot_busy = [&] {
    double busy = 0.0;
    for (int s = 0; s < cluster.num_servers(); s++) {
      busy += cluster.server(s).cpu().busy_core_nanos();
    }
    return busy;
  };

  // Warm-up with window sampling (the Fig 10a series spans warm-up too).
  for (SimTime t = config.window; t <= config.warmup; t += config.window) {
    engine.RunUntil(t);
    const auto w = cluster.TakeMetricsWindow();
    result.windows.push_back(HaloWindowSample{t, w.remote_fraction(), w.migrations});
  }

  // Steady state: reset measurements, as the paper does after the initial
  // migration burst settles.
  halo.clients().ResetStats();
  cluster.ResetMetricsLatencies();
  if (config.on_measure_start) {
    config.on_measure_start();
  }
  const double busy0 = snapshot_busy();
  const SimTime measure_start = engine.now();
  const uint64_t migrations0 = cluster.MetricsTotalMigrations();

  for (SimTime t = measure_start + config.window; t <= measure_start + config.measure;
       t += config.window) {
    engine.RunUntil(t);
    const auto w = cluster.TakeMetricsWindow();
    result.windows.push_back(HaloWindowSample{t, w.remote_fraction(), w.migrations});
    result.remote_fraction += w.remote_fraction();
  }
  engine.RunUntil(measure_start + config.measure);

  const double busy1 = snapshot_busy();
  const double window_ns = static_cast<double>(engine.now() - measure_start);
  const double cores = static_cast<double>(config.num_servers) *
                       static_cast<double>(cluster.server(0).config().cores);
  result.cpu_utilization = (busy1 - busy0) / (cores * window_ns);
  result.remote_fraction /=
      static_cast<double>(config.measure / config.window);
  result.migrations = cluster.MetricsTotalMigrations() - migrations0;
  result.client_latency = halo.clients().latency();
  result.actor_call_latency = cluster.MergedActorCallLatency();
  result.remote_call_latency = cluster.MergedRemoteActorCallLatency();
  result.completed = halo.clients().completed();
  result.timeouts = halo.clients().timeouts();
  for (int s = 0; s < cluster.num_servers(); s++) {
    std::vector<int> alloc;
    for (int i = 0; i < Server::kNumStages; i++) {
      alloc.push_back(cluster.server(s).stage(i).threads());
      result.stage_rejections += cluster.server(s).stage(i).total_rejections();
    }
    result.thread_allocations.push_back(std::move(alloc));
  }
  return result;
}

std::string LatencySummary(const Histogram& h) {
  return FormatMillis(h.p50()) + " / " + FormatMillis(h.p95()) + " / " + FormatMillis(h.p99());
}

double ImprovementPercent(double baseline, double optimized) {
  if (baseline <= 0.0) {
    return 0.0;
  }
  return 100.0 * (1.0 - optimized / baseline);
}

}  // namespace actop
