// Repartitioning arena benchmark (third perf-gate workload).
//
// Races the flat CSR repartitioning data plane (RepartitionArena) against
// the retained map-based PartitionTestbed on million-vertex graphs, and
// races the pluggable policies (src/core/repartition_policy.h) against each
// other on clustered, random, and churned topologies.
//
// Gated scenarios (compared against bench/baselines/BENCH_arena.baseline.json
// and self-gated by scripts/perf_gate.sh):
//
//   pairwise_rounds_100k   full pairwise rounds (plan + exchange + apply) on
//                          a 100k-vertex clustered graph, 8 servers.
//   pairwise_rounds_1m     the same at 1M vertices, 16 servers. One event =
//                          one pairwise round. The arena and the testbed
//                          execute byte-identical decision sequences (proven
//                          by tests/core/arena_differential_test.cc and
//                          re-checked here via assignment digests — exit 2
//                          on divergence), so speedup_vs_seed_impl is a pure
//                          data-plane comparison. The measured arena phase
//                          must be allocation-free: all candidate pools,
//                          heaps, and top-k scratch recycle after the warmup
//                          sweep.
//
// Policy races (informational, not gated — rows are keyed "policy" so the
// perf-gate comparator, which matches "name", skips them): every policy
// starts from the identical placement and runs sweeps to convergence or a
// cap, reporting sweeps, final cut cost (the cross-server message rate up to
// the per-message constant), and migration volume. See EXPERIMENTS.md
// ("Repartitioning arena").
//
// Usage:
//   bench_arena [--json=FILE] [--compare=FILE] [--gate] [--threshold=0.10]
//               [--scale=1.0] [--smoke]
//
// --gate fails (exit 1) if a gated scenario regresses beyond --threshold vs
// the --compare reference, if the geomean in-binary speedup over the two
// pairwise scenarios falls below 5x, or if the arena's measured phase
// allocates at all. --smoke runs a tiny identity + policy sanity pass and
// exits (the tier-1 CI entry).

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/core/csr_graph.h"
#include "src/core/partition_testbed.h"
#include "src/core/repartition_arena.h"
#include "src/core/repartition_policy.h"

// ---------------------------------------------------------------------------
// Counting-allocator hook (same as bench_partition): every global new/delete
// in this binary is counted; scenarios reset the counters after warmup so the
// reported figures are steady-state allocations.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
}  // namespace

// See bench_partition.cc: GCC reports a -Wmismatched-new-delete false
// positive when it inlines container internals against replaced operators.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace actop {
namespace {

struct ScenarioResult {
  std::string name;
  uint64_t events = 0;       // pairwise rounds driven through the arena
  uint64_t wall_ns = 0;      // wall-clock for the arena's measured phase
  uint64_t allocs = 0;       // heap allocations during the arena phase
  uint64_t bytes = 0;        // heap bytes during the arena phase
  uint64_t ref_wall_ns = 0;  // wall-clock for the testbed phase (same work)

  double events_per_sec() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(events) * 1e9 / static_cast<double>(wall_ns);
  }
  double ns_per_event() const {
    return events == 0 ? 0.0 : static_cast<double>(wall_ns) / static_cast<double>(events);
  }
  double allocs_per_event() const {
    return events == 0 ? 0.0 : static_cast<double>(allocs) / static_cast<double>(events);
  }
  // Both phases execute byte-identical decision sequences, so the speedup is
  // the wall-clock ratio.
  double seed_impl_speedup() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(ref_wall_ns) / static_cast<double>(wall_ns);
  }
};

struct RaceRow {
  std::string race;     // graph/topology label
  std::string policy;   // policy name from RepartitionPolicy::name()
  int sweeps = 0;
  bool converged = false;
  double initial_cost = 0.0;
  double final_cost = 0.0;
  int64_t migrations = 0;
  uint64_t wall_ns = 0;
};

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void ResetAllocCounters() {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes.store(0, std::memory_order_relaxed);
}

// Assignment digest of a testbed run, bit-compatible with
// RepartitionArena::AssignmentDigest (FNV-1a over (id, location) in
// ascending-id order, then total migrations).
uint64_t TestbedDigest(const PartitionTestbed& bed, const std::vector<VertexId>& sorted_ids) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  for (VertexId v : sorted_ids) {
    mix(v);
    mix(static_cast<uint64_t>(static_cast<int64_t>(bed.LocationOf(v))));
  }
  mix(static_cast<uint64_t>(bed.total_migrations()));
  return h;
}

// ---------------------------------------------------------------------------
// Gated scenarios: pairwise rounds, arena vs testbed on the same clustered
// graph. Both run kWarmSweeps + kTimedSweeps from the same placement seed;
// only the timed sweeps are measured, and the arena's timed phase must not
// allocate (pools and heaps are warm after the first sweep).
// ---------------------------------------------------------------------------

constexpr int kWarmSweeps = 1;
constexpr int kTimedSweeps = 3;

ScenarioResult RunPairwiseRounds(const std::string& name, const WeightedGraph& graph,
                                 const CsrGraph& csr, int servers, uint64_t placement_seed) {
  PairwiseConfig config;
  config.candidate_set_size = 64;
  config.balance_delta = 16;

  ScenarioResult out;
  out.name = name;

  RepartitionArena arena(&csr, servers, config, placement_seed);
  for (int s = 0; s < kWarmSweeps; s++) {
    arena.RunPairwiseSweep();
  }
  ResetAllocCounters();
  const uint64_t t0 = NowNs();
  for (int s = 0; s < kTimedSweeps; s++) {
    arena.RunPairwiseSweep();
  }
  out.wall_ns = NowNs() - t0;
  out.events = static_cast<uint64_t>(kTimedSweeps) * static_cast<uint64_t>(servers);
  out.allocs = g_alloc_count.load(std::memory_order_relaxed);
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed);

  PartitionTestbed bed(&graph, servers, config, placement_seed);
  for (int s = 0; s < kWarmSweeps; s++) {
    for (ServerId p = 0; p < servers; p++) {
      bed.RunRound(p);
    }
  }
  const uint64_t r0 = NowNs();
  for (int s = 0; s < kTimedSweeps; s++) {
    for (ServerId p = 0; p < servers; p++) {
      bed.RunRound(p);
    }
  }
  out.ref_wall_ns = NowNs() - r0;

  // Both phases ran the same sweeps from the same seed; any divergence means
  // the benchmark is comparing different work — refuse to report numbers.
  const uint64_t arena_digest = arena.AssignmentDigest();
  const uint64_t bed_digest = TestbedDigest(bed, graph.Vertices());
  if (arena_digest != bed_digest) {
    std::fprintf(stderr, "bench_arena: %s arena/testbed decisions diverged (%016llx vs %016llx)\n",
                 name.c_str(), static_cast<unsigned long long>(arena_digest),
                 static_cast<unsigned long long>(bed_digest));
    std::exit(2);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Policy races: every policy starts from the identical placement and sweeps
// to convergence or the cap.
// ---------------------------------------------------------------------------

void RunRace(const std::string& race, const CsrGraph& csr, int servers,
             uint64_t placement_seed, int max_sweeps, std::vector<RaceRow>* rows) {
  PairwiseConfig config;
  config.candidate_set_size = 64;
  config.balance_delta = 16;
  for (const auto& policy : MakeArenaPolicies()) {
    RepartitionArena arena(&csr, servers, config, placement_seed);
    RaceRow row;
    row.race = race;
    row.policy = policy->name();
    row.initial_cost = arena.cost();
    const uint64_t t0 = NowNs();
    for (int s = 0; s < max_sweeps; s++) {
      const int64_t moved = policy->RunSweep(&arena);
      row.sweeps++;
      if (moved == 0) {
        row.converged = true;
        break;
      }
    }
    row.wall_ns = NowNs() - t0;
    row.final_cost = arena.cost();
    row.migrations = arena.total_migrations();
    rows->push_back(row);
    std::fprintf(stderr, "race %-14s %-10s %3d sweeps%s  cost %10.1f -> %10.1f  %8lld moved  %6.1f ms\n",
                 race.c_str(), row.policy.c_str(), row.sweeps, row.converged ? "*" : " ",
                 row.initial_cost, row.final_cost, static_cast<long long>(row.migrations),
                 static_cast<double>(row.wall_ns) / 1e6);
  }
}

// ---------------------------------------------------------------------------
// Smoke mode: tiny identity + policy sanity pass; the tier-1 CI entry.
// ---------------------------------------------------------------------------

int RunSmoke() {
  Rng grng(7);
  const WeightedGraph graph = MakeClusteredGraph(200, 8, 1.0, 400, 0.5, &grng);
  const CsrGraph csr = CsrGraph::FromWeighted(graph);
  PairwiseConfig config;
  config.candidate_set_size = 16;
  config.balance_delta = 8;

  RepartitionArena arena(&csr, 4, config, 99);
  PartitionTestbed bed(&graph, 4, config, 99);
  for (int s = 0; s < 3; s++) {
    for (ServerId p = 0; p < 4; p++) {
      const int a = arena.RunPairwiseRound(p);
      const int b = bed.RunRound(p);
      if (a != b) {
        std::fprintf(stderr, "arena smoke: moved counts diverged (server %d)\n", p);
        return 2;
      }
    }
  }
  if (arena.AssignmentDigest() != TestbedDigest(bed, graph.Vertices())) {
    std::fprintf(stderr, "arena smoke: assignment digests diverged\n");
    return 2;
  }

  for (const auto& policy : MakeArenaPolicies()) {
    RepartitionArena racer(&csr, 4, config, 99);
    const double initial = racer.cost();
    double prev = initial;
    for (int s = 0; s < 5; s++) {
      if (policy->RunSweep(&racer) == 0) {
        break;
      }
      if (racer.cost() > prev + 1e-9) {
        std::fprintf(stderr, "arena smoke: %s increased cut cost\n", policy->name().c_str());
        return 2;
      }
      prev = racer.cost();
    }
    if (!(racer.cost() < initial)) {
      std::fprintf(stderr, "arena smoke: %s made no progress\n", policy->name().c_str());
      return 2;
    }
  }
  std::fprintf(stderr, "arena smoke OK: pairwise byte-identical, %d policies reduce cost\n",
               static_cast<int>(MakeArenaPolicies().size()));
  return 0;
}

// ---------------------------------------------------------------------------
// Output & comparison (format shared with bench_partition; see EXPERIMENTS.md)
// ---------------------------------------------------------------------------

std::string ScenarioJson(const ScenarioResult& r, double speedup, bool have_ref) {
  std::ostringstream os;
  os << "    {\"name\": \"" << r.name << "\", \"events\": " << r.events
     << ", \"wall_ns\": " << r.wall_ns;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", r.events_per_sec());
  os << ", \"events_per_sec\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.2f", r.ns_per_event());
  os << ", \"ns_per_event\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.4f", r.allocs_per_event());
  os << ", \"allocs_per_event\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.3f", r.seed_impl_speedup());
  os << ", \"speedup_vs_seed_impl\": " << buf;
  if (have_ref) {
    std::snprintf(buf, sizeof(buf), "%.3f", speedup);
    os << ", \"speedup_vs_ref\": " << buf;
  }
  os << "}";
  return os.str();
}

std::string RaceJson(const RaceRow& r) {
  std::ostringstream os;
  os << "    {\"race\": \"" << r.race << "\", \"policy\": \"" << r.policy
     << "\", \"sweeps\": " << r.sweeps << ", \"converged\": " << (r.converged ? "true" : "false");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", r.initial_cost);
  os << ", \"initial_cost\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.1f", r.final_cost);
  os << ", \"final_cost\": " << buf;
  os << ", \"migrations\": " << r.migrations << ", \"wall_ns\": " << r.wall_ns << "}";
  return os.str();
}

// Same line-oriented lookup contract as bench_engine/bench_partition.
bool LookupRef(const std::string& ref_text, const std::string& name, const std::string& key,
               double* value) {
  std::istringstream in(ref_text);
  std::string line;
  const std::string name_tag = "\"name\": \"" + name + "\"";
  const std::string key_tag = "\"" + key + "\": ";
  while (std::getline(in, line)) {
    const size_t at = line.find(name_tag);
    if (at == std::string::npos) {
      continue;
    }
    const size_t kat = line.find(key_tag);
    if (kat == std::string::npos) {
      return false;
    }
    *value = std::strtod(line.c_str() + kat + key_tag.size(), nullptr);
    return true;
  }
  return false;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) {
  using namespace actop;

  std::string json_path;
  std::string compare_path;
  bool gate = false;
  bool smoke = false;
  double threshold = 0.10;
  double scale = 1.0;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--compare=", 0) == 0) {
      compare_path = arg.substr(10);
    } else if (arg == "--gate") {
      gate = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::strtod(arg.c_str() + 8, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_arena [--json=FILE] [--compare=FILE] [--gate] "
                   "[--threshold=0.10] [--scale=1.0] [--smoke]\n");
      return 2;
    }
  }
  if (smoke) {
    return RunSmoke();
  }

  std::string ref_text;
  if (!compare_path.empty()) {
    std::ifstream in(compare_path);
    if (!in) {
      std::fprintf(stderr, "bench_arena: cannot read reference %s\n", compare_path.c_str());
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    ref_text = os.str();
  }

  // Graphs. The clustered shape is the paper's workload model (tight actor
  // groups + a fringe of cross-group edges); churn rewires a quarter of the
  // vertices toward foreign clusters; random is the adversarial floor.
  const auto clusters_100k = static_cast<int>(12500 * scale);
  const auto clusters_1m = static_cast<int>(125000 * scale);

  Rng g100k_rng(0xa1ULL);
  const WeightedGraph g100k =
      MakeClusteredGraph(clusters_100k, 8, 1.0, clusters_100k * 2, 0.5, &g100k_rng);
  const CsrGraph csr100k = CsrGraph::FromWeighted(g100k);

  Rng g1m_rng(0xb2ULL);
  const WeightedGraph g1m =
      MakeClusteredGraph(clusters_1m, 8, 1.0, clusters_1m * 2, 0.5, &g1m_rng);
  const CsrGraph csr1m = CsrGraph::FromWeighted(g1m);

  std::vector<ScenarioResult> results;
  results.push_back(RunPairwiseRounds("pairwise_rounds_100k", g100k, csr100k, 8, 0x5eedULL));
  results.push_back(RunPairwiseRounds("pairwise_rounds_1m", g1m, csr1m, 16, 0x5eedULL));

  std::vector<RaceRow> races;
  RunRace("clustered_100k", csr100k, 8, 0x5eedULL, 40, &races);
  {
    Rng rng(0xc3ULL);
    const int n = clusters_100k * 8;
    const WeightedGraph grand = MakeRandomGraph(n, n * 4, 2.0, &rng);
    const CsrGraph csr = CsrGraph::FromWeighted(grand);
    RunRace("random_100k", csr, 8, 0x5eedULL, 40, &races);
  }
  {
    Rng rng(0xd4ULL);
    const WeightedGraph gchurn = MakeChurnedClusteredGraph(clusters_100k, 8, 1.0, 0.25, &rng);
    const CsrGraph csr = CsrGraph::FromWeighted(gchurn);
    RunRace("churned_100k", csr, 8, 0x5eedULL, 40, &races);
  }
  RunRace("clustered_1m", csr1m, 16, 0x5eedULL, 6, &races);

  // Acceptance headline: geomean in-binary speedup over the gated pairwise
  // scenarios, plus the zero-allocation steady-state requirement.
  double gate_geomean = 1.0;
  int gate_terms = 0;
  uint64_t gate_allocs = 0;
  for (const ScenarioResult& r : results) {
    gate_geomean *= r.seed_impl_speedup();
    gate_terms++;
    gate_allocs += r.allocs;
  }
  gate_geomean = gate_terms > 0 ? std::pow(gate_geomean, 1.0 / gate_terms) : 0.0;

  int regressions = 0;
  std::ostringstream body;
  body << "{\n  \"bench\": \"arena\",\n  \"schema_version\": 1,\n";
#ifdef NDEBUG
  body << "  \"assertions\": false,\n";
#else
  body << "  \"assertions\": true,\n";
#endif
  body << "  \"scale\": " << scale << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); i++) {
    const ScenarioResult& r = results[i];
    double ref_eps = 0.0;
    const bool have_ref =
        !ref_text.empty() && LookupRef(ref_text, r.name, "events_per_sec", &ref_eps) &&
        ref_eps > 0.0;
    const double speedup = have_ref ? r.events_per_sec() / ref_eps : 0.0;
    if (have_ref && speedup < 1.0 - threshold) {
      regressions++;
      std::fprintf(stderr, "PERF REGRESSION: %s %.0f events/s vs ref %.0f (x%.3f < %.3f)\n",
                   r.name.c_str(), r.events_per_sec(), ref_eps, speedup, 1.0 - threshold);
    }
    body << ScenarioJson(r, speedup, have_ref);
    body << (i + 1 < results.size() ? ",\n" : "\n");
    const std::string suffix = have_ref ? " (x" + std::to_string(speedup) + " vs ref)" : "";
    std::fprintf(stderr,
                 "%-20s %10.0f rounds/s  %12.0f ns/round  %8.4f allocs/round  x%6.2f vs seed%s\n",
                 r.name.c_str(), r.events_per_sec(), r.ns_per_event(), r.allocs_per_event(),
                 r.seed_impl_speedup(), suffix.c_str());
  }
  body << "  ],\n  \"races\": [\n";
  for (size_t i = 0; i < races.size(); i++) {
    body << RaceJson(races[i]);
    body << (i + 1 < races.size() ? ",\n" : "\n");
  }
  body << "  ],\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", gate_geomean);
    body << "  \"geomean_speedup_vs_seed_impl\": " << buf << "\n";
  }
  body << "}\n";
  std::fprintf(stderr, "geomean speedup vs testbed (pairwise_rounds_100k, pairwise_rounds_1m): x%.2f\n",
               gate_geomean);

  const std::string text = body.str();
  std::fputs(text.c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << text;
  }
  int failures = 0;
  if (gate && regressions > 0) {
    std::fprintf(stderr, "perf gate: %d scenario(s) regressed beyond %.0f%%\n", regressions,
                 threshold * 100.0);
    failures++;
  }
  if (gate && gate_geomean < 5.0) {
    std::fprintf(stderr, "perf gate: geomean speedup vs testbed x%.2f below the 5x floor\n",
                 gate_geomean);
    failures++;
  }
  if (gate && gate_allocs > 0) {
    std::fprintf(stderr,
                 "perf gate: arena steady-state allocated %llu times (must be 0 per round)\n",
                 static_cast<unsigned long long>(gate_allocs));
    failures++;
  }
  return failures > 0 ? 1 : 0;
}
