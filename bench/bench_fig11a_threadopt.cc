// Figure 11(a): latency improvement from model-driven thread allocation on
// the Heartbeat benchmark (one server) at different loads.
//
// Paper (10K / 12.5K / 15K req/s): improvements grow with load, reaching 58%
// median and 68% p99 at 15K. The controller settles on small allocations
// (2 client senders; 3 workers at 10-12.5K, 4 at 15K) versus the default of
// 8 threads per stage.

#include <cstdio>

#include "bench/halo_common.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "src/workload/heartbeat.h"

namespace actop {
namespace {

struct RunResult {
  Histogram latency;
  std::vector<int> threads;
};

RunResult Run(double load, bool optimized, const Flags& flags) {
  Simulation sim;
  ClusterConfig cfg;
  cfg.num_servers = 1;
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  // Single saturated server: same heavier GC profile as the Counter
  // experiments (see EXPERIMENTS.md).
  cfg.server.gc_base_duration = Millis(5);
  cfg.server.gc_per_thread_factor = 0.18;
  cfg.enable_thread_optimization = optimized;
  cfg.thread_controller.period = Seconds(1);
  cfg.thread_controller.eta = 100e-6;
  Cluster cluster(&sim, cfg);

  HeartbeatWorkloadConfig w;
  w.num_monitors = static_cast<int>(flags.GetInt("monitors"));
  w.request_rate = load;
  HeartbeatWorkload workload(&cluster, w);
  workload.Start();
  cluster.StartOptimizers();

  sim.RunUntil(Seconds(flags.GetInt("warmup-secs")));
  workload.clients().ResetStats();
  sim.RunUntil(sim.now() + Seconds(flags.GetInt("measure-secs")));

  RunResult result;
  result.latency = workload.clients().latency();
  for (int i = 0; i < Server::kNumStages; i++) {
    result.threads.push_back(cluster.server(0).stage(i).threads());
  }
  return result;
}

std::string AllocString(const std::vector<int>& t) {
  return "r" + std::to_string(t[0]) + "/w" + std::to_string(t[1]) + "/ss" +
         std::to_string(t[2]) + "/cs" + std::to_string(t[3]);
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("monitors", 4000, "monitor actors");
  flags.DefineDouble("load1", 10000.0, "low load (paper: 10000)");
  flags.DefineDouble("load2", 12500.0, "mid load (paper: 12500)");
  flags.DefineDouble("load3", 15000.0, "high load (paper: 15000)");
  flags.DefineInt("warmup-secs", 8, "controller settle time");
  flags.DefineInt("measure-secs", 25, "measurement window");
  flags.DefineInt("seed", 23, "random seed");
  flags.Parse(argc, argv);

  std::printf("== Figure 11(a): model-driven thread allocation on Heartbeat ==\n");
  std::printf("paper reference: up to 58%% median / 68%% p99 improvement at the top load; "
              "allocation shrinks to a few threads per stage\n\n");

  Table t({"load (req/s)", "median impr", "p95 impr", "p99 impr", "default med(ms)",
           "optimized med(ms)", "chosen allocation"});
  for (double load : {flags.GetDouble("load1"), flags.GetDouble("load2"),
                      flags.GetDouble("load3")}) {
    const RunResult base = Run(load, false, flags);
    const RunResult opt = Run(load, true, flags);
    t.AddRow({FormatDouble(load, 0),
              FormatDouble(ImprovementPercent(static_cast<double>(base.latency.p50()),
                                              static_cast<double>(opt.latency.p50())),
                           1) +
                  "%",
              FormatDouble(ImprovementPercent(static_cast<double>(base.latency.p95()),
                                              static_cast<double>(opt.latency.p95())),
                           1) +
                  "%",
              FormatDouble(ImprovementPercent(static_cast<double>(base.latency.p99()),
                                              static_cast<double>(opt.latency.p99())),
                           1) +
                  "%",
              FormatMillis(base.latency.p50()), FormatMillis(opt.latency.p50()),
              AllocString(opt.threads)});
  }
  t.Print();
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
