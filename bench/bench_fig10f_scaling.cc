// Figure 10(f): scaling with the number of actors.
//
// Paper: with 10K / 100K / 1M live players at 4K req/s, the partitioning
// optimization keeps delivering large latency reductions — the distributed
// algorithm scales because no server ever holds the whole graph.
//
// The message-level simulation sweeps the scaled player counts; the
// million-actor point is exercised on the pure partitioning algorithm (the
// same code the agents run) over a synthetic Halo-shaped graph, reporting
// convergence sweeps, cut quality and wall-clock per exchange.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/halo_common.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/core/partition_testbed.h"

namespace actop {
namespace {

void FullSimulationSweep(const Flags& flags) {
  std::printf("-- message-level simulation --\n");
  Table t({"players", "median impr", "p95 impr", "p99 impr", "steady remote"});
  for (int players : {static_cast<int>(flags.GetInt("players1")),
                      static_cast<int>(flags.GetInt("players2"))}) {
    HaloExperimentConfig base;
    base.players = players;
    base.request_rate = flags.GetDouble("load");
    base.measure = Seconds(flags.GetInt("measure-secs"));
    base.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    HaloExperimentConfig opt = base;
    opt.partitioning = true;

    const HaloExperimentResult b = RunHaloExperiment(base);
    const HaloExperimentResult o = RunHaloExperiment(opt);
    t.AddRow({std::to_string(players),
              FormatDouble(ImprovementPercent(static_cast<double>(b.client_latency.p50()),
                                              static_cast<double>(o.client_latency.p50())),
                           1) +
                  "%",
              FormatDouble(ImprovementPercent(static_cast<double>(b.client_latency.p95()),
                                              static_cast<double>(o.client_latency.p95())),
                           1) +
                  "%",
              FormatDouble(ImprovementPercent(static_cast<double>(b.client_latency.p99()),
                                              static_cast<double>(o.client_latency.p99())),
                           1) +
                  "%",
              FormatPercent(o.remote_fraction)});
  }
  t.Print();
}

void AlgorithmScalingSweep(const Flags& flags) {
  std::printf("\n-- pure partitioning algorithm on Halo-shaped graphs --\n");
  Table t({"vertices", "servers", "sweeps (capped)", "cut reduction", "imbalance", "wall(ms)"});
  for (int64_t vertices : {int64_t{100'000}, flags.GetInt("algo-max-vertices")}) {
    const int cluster_size = 9;  // one game + 8 players
    const int clusters = static_cast<int>(vertices / cluster_size);
    const int servers = 10;
    Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
    WeightedGraph g = MakeClusteredGraph(clusters, cluster_size, 1.0, clusters / 10, 0.05, &rng);
    PairwiseConfig config;
    // The per-exchange batch is a constant fraction of the per-server vertex
    // count (the paper's "small fraction of the total number of vertices"),
    // so convergence takes a similar number of sweeps at every scale.
    config.candidate_set_size =
        std::max<size_t>(1024, static_cast<size_t>(vertices / servers / 8));
    config.balance_delta = 2 * cluster_size;
    PartitionTestbed bed(&g, servers, config, static_cast<uint64_t>(flags.GetInt("seed")));
    const double initial = bed.Cost();
    const auto start = std::chrono::steady_clock::now();
    // A handful of sweeps demonstrates the scaling claim; full convergence
    // on the million-vertex graph adds minutes for the last few percent.
    const int sweeps = bed.RunToConvergence(static_cast<int>(flags.GetInt("algo-max-sweeps")));
    const auto wall =
        std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                                              start)
            .count();
    t.AddRow({std::to_string(vertices), std::to_string(servers), std::to_string(sweeps),
              FormatPercent(1.0 - bed.Cost() / initial), std::to_string(bed.MaxImbalance()),
              std::to_string(wall)});
  }
  t.Print();
  std::printf("(the paper's METIS comparison point: centralized partitioning of graphs this "
              "size took hours and cannot track 1%%/min churn)\n");
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("players1", 2500, "small player count (paper: 10000)");
  flags.DefineInt("players2", 10000, "large player count (paper: 100000)");
  flags.DefineInt("algo-max-vertices", 250'000,
                  "vertices for the large pure-algorithm point (1'000'000 reproduces the "
                  "paper's top scale; ~15 min on one core)");
  flags.DefineInt("algo-max-sweeps", 8, "sweep budget for the pure-algorithm points");
  flags.DefineDouble("load", 3000.0, "client requests/sec (paper: 4000)");
  flags.DefineInt("measure-secs", 30, "measurement window per run");
  flags.DefineInt("seed", 42, "random seed");
  flags.Parse(argc, argv);

  std::printf("== Figure 10(f): latency reduction vs number of actors ==\n");
  std::printf("paper reference: large improvements sustained from 10K to 1M live players\n\n");
  FullSimulationSweep(flags);
  AlgorithmScalingSweep(flags);
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
