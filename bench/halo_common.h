// Shared harness for the Halo Presence experiments (§3 and §6.1/6.3).
//
// Runs the scaled-down cluster (8 servers × 8 cores, 10K players by default;
// the paper used 10 servers and 100K players) with any combination of the
// two ActOp optimizations, discards the convergence warm-up exactly like the
// paper does, and reports client latency, server-to-server call latency,
// CPU utilization, remote-message fraction and migration counts.

#ifndef BENCH_HALO_COMMON_H_
#define BENCH_HALO_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/sim_time.h"
#include "src/runtime/cluster.h"
#include "src/workload/halo_presence.h"

namespace actop {

struct HaloExperimentConfig {
  int num_servers = 8;
  int players = 10000;
  double request_rate = 4500.0;  // the scaled "6K req/s" high-load point
  // Engine shards (worker threads). 1 = the serial engine, byte-identical to
  // the historical single-Simulation harness; >1 partitions the servers
  // across shards under conservative time-window synchronization.
  int shards = 1;
  bool partitioning = false;
  bool thread_optimization = false;
  SimDuration warmup = Seconds(60);
  SimDuration measure = Seconds(40);
  uint64_t seed = 42;
  // Per-window callback during measurement (e.g. for the Fig 10a series).
  SimDuration window = Seconds(10);
  // Invoked once when the warm-up ends and the measure window begins (stats
  // freshly reset). bench_cluster uses it to snapshot its allocation
  // counters so allocs/event covers steady state only, not setup/warm-up.
  std::function<void()> on_measure_start;
};

struct HaloWindowSample {
  SimTime at = 0;
  double remote_fraction = 0.0;
  uint64_t migrations = 0;
};

struct HaloExperimentResult {
  Histogram client_latency;        // end-to-end, as seen by clients
  Histogram actor_call_latency;    // caller-observed actor-to-actor calls
  Histogram remote_call_latency;   // remote subset of the above
  double cpu_utilization = 0.0;    // mean across servers over the window
  double remote_fraction = 0.0;    // actor messages crossing servers
  uint64_t migrations = 0;         // during the measure window
  uint64_t completed = 0;
  uint64_t timeouts = 0;
  uint64_t stage_rejections = 0;
  std::vector<HaloWindowSample> windows;          // including warm-up
  std::vector<std::vector<int>> thread_allocations;  // last allocation per server
};

// Builds the cluster+workload configs used by every Halo bench; exposed so
// individual benches can tweak single knobs.
ClusterConfig MakeHaloClusterConfig(const HaloExperimentConfig& config);
HaloWorkloadConfig MakeHaloWorkloadConfig(const HaloExperimentConfig& config);

// Runs one experiment to completion.
HaloExperimentResult RunHaloExperiment(const HaloExperimentConfig& config);

// Formats a latency triple "med / p95 / p99" in ms.
std::string LatencySummary(const Histogram& h);

// 100 * (1 - optimized/baseline), guarded against zero.
double ImprovementPercent(double baseline, double optimized);

}  // namespace actop

#endif  // BENCH_HALO_COMMON_H_
