// Shared harness for the single-server Counter experiments (Figures 4, 5).
//
// The counter application runs on one 8-core server at 15K requests/sec with
// 8K actors (§3). This single-server setup uses the heavier GC profile (the
// machine sustains nearly 2x the per-server message rate of the Halo
// cluster, so pauses and allocation pressure are proportionally larger);
// EXPERIMENTS.md records the parameterization.

#ifndef BENCH_COUNTER_COMMON_H_
#define BENCH_COUNTER_COMMON_H_

#include <array>

#include "src/common/histogram.h"
#include "src/common/sim_time.h"
#include "src/runtime/cluster.h"
#include "src/workload/counter.h"

namespace actop {

struct CounterExperimentConfig {
  double request_rate = 15000.0;
  int num_actors = 8000;
  // Thread allocation: {receive, worker, server_sender, client_sender}.
  std::array<int, 4> threads = {8, 8, 8, 8};
  SimDuration warmup = Seconds(5);
  SimDuration measure = Seconds(20);
  uint64_t seed = 17;
  bool thread_optimization = false;
};

struct StageBreakdown {
  double queue_share = 0.0;       // share of end-to-end mean latency
  double processing_share = 0.0;  // in-service wallclock share
};

struct CounterExperimentResult {
  Histogram latency;
  double cpu_utilization = 0.0;
  // Breakdown per stage in server order, plus network and "other".
  std::array<StageBreakdown, 4> stages;
  double network_share = 0.0;
  double other_share = 0.0;
  std::vector<int> final_threads;
};

ClusterConfig MakeCounterClusterConfig(const CounterExperimentConfig& config);
CounterExperimentResult RunCounterExperiment(const CounterExperimentConfig& config);

}  // namespace actop

#endif  // BENCH_COUNTER_COMMON_H_
