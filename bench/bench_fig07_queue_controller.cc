// Figure 7: queue-length-based thread control oscillates.
//
// Six-stage SEDA emulator; the [33,34]-style controller samples each queue every
// 30 seconds, adds a thread when queue length > Th = 100 and removes one
// when < Tl = 10. The paper observes queues flipping between empty and the
// threshold and thread allocations fluctuating without converging.

#include <cstdio>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/thread_controller.h"
#include "src/seda/emulator.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineDouble("load", 4000.0, "requests/sec into the pipeline");
  flags.DefineInt("duration-secs", 450, "experiment length (paper: 450 s)");
  flags.DefineInt("period-secs", 30, "controller period (paper: 30 s)");
  flags.DefineInt("th", 100, "queue-length upper threshold Th");
  flags.DefineInt("tl", 10, "queue-length lower threshold Tl");
  flags.DefineInt("seed", 5, "random seed");
  flags.Parse(argc, argv);

  std::printf("== Figure 7: queue-length-based thread controller (6-stage SEDA) ==\n");
  std::printf("paper reference: queue lengths flip between ~0 and the threshold; "
              "thread allocations fluctuate for the whole run\n\n");

  EmulatorConfig cfg;
  cfg.cores = 8;
  cfg.kappa = 0.05;
  cfg.arrival_rate = flags.GetDouble("load");
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  for (int i = 0; i < 6; i++) {
    EmulatorStageConfig st;
    st.name = "stage" + std::to_string(i);
    // Two heavy stages create bottlenecks the controller keeps mis-chasing.
    st.mean_compute = (i == 1 || i == 4) ? Micros(450) : Micros(120);
    st.initial_threads = 1;
    cfg.stages.push_back(st);
  }

  Simulation sim;
  Emulator emu(&sim, cfg);
  QueueLengthThreadController controller(
      &sim, &emu,
      QueueLengthControllerConfig{
          .period = Seconds(flags.GetInt("period-secs")),
          .high_threshold = static_cast<uint64_t>(flags.GetInt("th")),
          .low_threshold = static_cast<uint64_t>(flags.GetInt("tl"))});

  Table t({"t(s)", "q0", "q1", "q2", "q3", "q4", "q5", "t0", "t1", "t2", "t3", "t4", "t5"});
  std::vector<int> last_alloc;
  int direction_changes = 0;
  std::vector<int> prev_delta(6, 0);
  controller.set_observer([&](const std::vector<int>& alloc) {
    std::vector<std::string> row = {FormatDouble(ToSeconds(sim.now()), 0)};
    for (int i = 0; i < 6; i++) {
      row.push_back(std::to_string(emu.stage(i).queue_length()));
    }
    for (int i = 0; i < 6; i++) {
      row.push_back(std::to_string(alloc[static_cast<size_t>(i)]));
      if (!last_alloc.empty()) {
        const int delta = alloc[static_cast<size_t>(i)] - last_alloc[static_cast<size_t>(i)];
        if (delta != 0 && prev_delta[static_cast<size_t>(i)] != 0 &&
            (delta > 0) != (prev_delta[static_cast<size_t>(i)] > 0)) {
          direction_changes++;
        }
        if (delta != 0) {
          prev_delta[static_cast<size_t>(i)] = delta;
        }
      }
    }
    last_alloc = alloc;
    t.AddRow(std::move(row));
  });

  emu.Start();
  controller.Start();
  sim.RunUntil(Seconds(flags.GetInt("duration-secs")));
  t.Print();
  std::printf("\nallocation direction changes: %d (oscillation %s)\n", direction_changes,
              direction_changes > 3 ? "CONFIRMED — matches the paper" : "not observed");
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
