// End-to-end cluster hot-path macrobenchmark (third perf-gate workload).
//
// Two halves:
//
// 1. CPU-scheduler scenarios, measured TWICE in the same binary (the
//    bench_partition pattern): once with the virtual-time CpuModel
//    (src/seda/cpu.h) and once with the retained seed implementation
//    (src/seda/cpu_reference.h, namespace sedaref). The two are held
//    completion-for-completion equivalent by
//    tests/seda/cpu_differential_test.cc, so the in-binary
//    "speedup_vs_seed_impl" is a pure scheduler-data-structure comparison on
//    the same closed-loop workload.
//
//      cpu_closed_loop_x4    8 cores, 32 jobs in closed loop (4x thread
//                            oversubscription with the runtime's default
//                            dispatch quantum): every completion immediately
//                            launches a replacement with jittered demand —
//                            the saturated-single-server shape from the
//                            paper's Figure 5 heatmap.
//      cpu_closed_loop_x16   same at 16x oversubscription (128 jobs), where
//                            the seed's O(n) per-event remaining-demand loop
//                            and full min-rescan hurt most.
//      cpu_gc_churn          8x oversubscription with managed-runtime pauses
//                            enabled at the runtime's defaults: the
//                            pause/resume path (mass re-rate of every
//                            running job) plus steady completion churn.
//
//    The optimized phases must run allocation-free in steady state (slab
//    jobs, standing completion event, scratch batch buffers); the gate
//    enforces allocs_per_event == 0 for them.
//
// 2. cluster_fig10b: a short fig10b-shaped Halo Presence run (both ActOp
//    optimizations on) through the full runtime — servers, stages, network,
//    controllers, partitioning — reported as simulated milliseconds per
//    wall-clock second. No in-binary seed twin exists at this level (the
//    rewrite replaced the model in place), so this scenario is gated
//    against the checked-in baseline JSON plus a ratcheted allocs/event
//    ceiling over its measure window (steady state must stay within 3
//    allocations per simulated millisecond end to end; see EXPERIMENTS.md
//    "Allocs/event gate").
//
// Output is line-oriented JSON exactly like bench_engine/bench_partition so
// scripts/perf_gate.sh can compare runs with basic text tools; see
// EXPERIMENTS.md ("Cluster macrobenchmark & perf gate").
//
// Usage:
//   bench_cluster [--json=FILE] [--compare=FILE] [--gate]
//                 [--threshold=0.10] [--scale=1.0]
//
// --compare adds per-scenario "speedup_vs_ref" against a reference JSON
// (e.g. the checked-in baseline); with --gate the exit code is non-zero if
// any scenario's throughput regresses by more than --threshold, OR if the
// geomean in-binary speedup over the three cpu_* scenarios falls below 1.5x
// (the acceptance target is 2x on the reference machine; 1.5x leaves
// headroom for noisy CI boxes while still catching a lost rewrite), OR if an
// optimized cpu_* phase allocated in steady state.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "bench/halo_common.h"
#include "src/common/sim_time.h"
#include "src/seda/cpu.h"
#include "src/seda/cpu_reference.h"
#include "src/sim/simulation.h"

// ---------------------------------------------------------------------------
// Counting-allocator hook (same as bench_engine/bench_partition): every
// global new/delete in this binary is counted. Scenarios reset the counters
// after setup/warmup so the reported figures are steady-state allocations.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
}  // namespace

// See bench_partition.cc: GCC flags the opaque replaced operator new against
// inlined STL deletes in this TU (known counting-allocator false positive).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace actop {
namespace {

struct ScenarioResult {
  std::string name;
  uint64_t events = 0;       // completions (cpu_*) / completed calls (cluster)
  uint64_t wall_ns = 0;      // wall-clock for the optimized measured phase
  uint64_t allocs = 0;       // heap allocations during the optimized phase
  uint64_t bytes = 0;        // heap bytes during the optimized phase
  uint64_t ref_wall_ns = 0;  // wall-clock for the seed-impl phase (0 = none)
  bool must_be_alloc_free = false;
  // When nonzero, the alloc counters cover a sub-window of `events` (e.g.
  // cluster_fig10b counts allocations over the measure window only, while
  // `events` spans warm-up + measure for scale-invariant throughput); use it
  // as the allocs/event denominator instead of `events`.
  uint64_t alloc_events = 0;
  // Ratcheted ceiling on allocs_per_event(); negative = not gated.
  double max_allocs_per_event = -1.0;

  double events_per_sec() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(events) * 1e9 / static_cast<double>(wall_ns);
  }
  double ns_per_event() const {
    return events == 0 ? 0.0 : static_cast<double>(wall_ns) / static_cast<double>(events);
  }
  double allocs_per_event() const {
    const uint64_t denom = alloc_events != 0 ? alloc_events : events;
    return denom == 0 ? 0.0 : static_cast<double>(allocs) / static_cast<double>(denom);
  }
  double bytes_per_event() const {
    const uint64_t denom = alloc_events != 0 ? alloc_events : events;
    return denom == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(denom);
  }
  bool has_seed_impl() const { return ref_wall_ns != 0; }
  // Both phases do identical work, so the speedup is the wall-clock ratio.
  double seed_impl_speedup() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(ref_wall_ns) / static_cast<double>(wall_ns);
  }
};

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void ResetAllocCounters() {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Closed-loop CPU driver, templated over the model under test. `inflight`
// jobs are launched once; each completion immediately launches a replacement
// with LCG-jittered demand, keeping the CPU saturated at a fixed
// oversubscription level forever. Both template instantiations consume the
// same demand stream and the same model seed, so the two phases do
// statistically identical work (the differential tests pin the semantics).
// ---------------------------------------------------------------------------

// Runtime defaults from ServerConfig (src/runtime/server.h) so the scenarios
// time the parameters real cluster runs use.
constexpr int kCores = 8;
constexpr double kKappa = 0.03;
constexpr SimDuration kQuantum = Micros(60);

template <typename Model>
struct ClosedLoop {
  Simulation sim;
  Model cpu;
  uint64_t completed = 0;
  uint64_t lcg;

  ClosedLoop(uint64_t model_seed, uint64_t demand_seed)
      : cpu(&sim, kCores, kKappa, kQuantum, model_seed), lcg(demand_seed) {}

  SimDuration NextDemand() {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    // 20–85 µs of core time: the order of the halo stage compute costs.
    return Micros(20) + static_cast<SimDuration>((lcg >> 33) & 0xFFFF);
  }

  void Launch() {
    cpu.BeginCompute(NextDemand(), [this] {
      completed++;
      Launch();
    });
  }

  // Runs the event loop until `target` total completions; returns wall ns.
  uint64_t RunUntilCompleted(uint64_t target) {
    const uint64_t t0 = NowNs();
    while (completed < target && sim.RunOne()) {
    }
    return NowNs() - t0;
  }
};

template <typename Model>
uint64_t TimeClosedLoop(int inflight, bool gc_pauses, uint64_t warm, uint64_t measured,
                        uint64_t* measured_wall) {
  ClosedLoop<Model> loop(/*model_seed=*/0x5eedULL, /*demand_seed=*/0x0ddba11ULL);
  if (gc_pauses) {
    // Runtime GC defaults (ServerConfig); total_threads drives pause length.
    loop.cpu.set_total_threads(inflight);
    loop.cpu.EnablePauses(Millis(250), Millis(4), /*per_thread_factor=*/0.06,
                          /*exponent=*/1.8);
  }
  for (int i = 0; i < inflight; i++) {
    loop.Launch();
  }
  loop.RunUntilCompleted(warm);
  ResetAllocCounters();
  *measured_wall = loop.RunUntilCompleted(warm + measured);
  return loop.completed;
}

ScenarioResult RunCpuClosedLoop(const char* name, int inflight, bool gc_pauses,
                                uint64_t completions, double scale) {
  ScenarioResult out;
  out.name = name;
  out.must_be_alloc_free = true;
  const auto measured = static_cast<uint64_t>(static_cast<double>(completions) * scale);
  const uint64_t warm = measured / 10;

  uint64_t wall = 0;
  TimeClosedLoop<CpuModel>(inflight, gc_pauses, warm, measured, &wall);
  out.wall_ns = wall;
  out.events = measured;
  out.allocs = g_alloc_count.load(std::memory_order_relaxed);
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed);

  TimeClosedLoop<sedaref::CpuModel>(inflight, gc_pauses, warm, measured, &wall);
  out.ref_wall_ns = wall;
  return out;
}

// ---------------------------------------------------------------------------
// cluster_fig10b: the full runtime end to end — a shortened Figure 10b run
// (Halo Presence, both optimizations on) reported as completed actor calls
// per wall-clock second. This is the macro check that the scheduler rewrite
// and the stage/server/metrics fast paths compose: the microbenchmarks above
// can't see cross-layer regressions (e.g. a scheduler change that shifts
// controller windows).
// ---------------------------------------------------------------------------

ScenarioResult RunClusterFig10b(double scale) {
  ScenarioResult out;
  out.name = "cluster_fig10b";

  HaloExperimentConfig config;
  config.players = 2000;
  config.request_rate = 900.0;
  config.partitioning = true;
  config.thread_optimization = true;
  config.warmup = Seconds(20);
  config.measure = std::max<SimDuration>(Seconds(1), SecondsF(10.0 * scale));
  config.seed = 42;

  // Snapshot the counters when the measure window opens so the reported
  // allocs/bytes cover steady state only: setup and warm-up legitimately
  // allocate (actor activations, map growth, pool priming), and counting
  // them would both mask steady-state churn and make the ceiling
  // scale-dependent.
  uint64_t allocs_at_measure = 0;
  uint64_t bytes_at_measure = 0;
  config.on_measure_start = [&allocs_at_measure, &bytes_at_measure] {
    allocs_at_measure = g_alloc_count.load(std::memory_order_relaxed);
    bytes_at_measure = g_alloc_bytes.load(std::memory_order_relaxed);
  };

  ResetAllocCounters();
  const uint64_t t0 = NowNs();
  const HaloExperimentResult result = RunHaloExperiment(config);
  out.wall_ns = NowNs() - t0;
  // One "event" is one simulated millisecond of the whole run (warm-up
  // included): events_per_sec is then sim-ms per wall-second, which is
  // scale-invariant — unlike completed-calls/sec, which would amortize the
  // fixed warm-up over a scaled measure window and make the gate's
  // --scale=0.5 runs incomparable to the scale-1 baseline.
  out.events = static_cast<uint64_t>((config.warmup + config.measure) / Millis(1));
  out.allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_at_measure;
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed) - bytes_at_measure;
  // The alloc counters span the measure window only; divide by its sim-ms.
  out.alloc_events = static_cast<uint64_t>(config.measure / Millis(1));
  // Ratcheted ceiling (see EXPERIMENTS.md): the data-plane slab/pool work
  // brought steady state from ~58 allocs/sim-ms down to 2.40, and routing
  // the partition agents through the persistent CSR arena planner
  // (use_arena_planner: no per-round LocalGraphView, all planning scratch
  // reused) removed the control plane's ~1.8 allocs/sim-ms on top, leaving
  // 0.54 — essentially just the plan/response payloads that go onto the
  // wire. The ratchet went 5.0 -> 3.0 -> 2.5 -> 1.0; the current ceiling
  // keeps ~46% headroom for stdlib growth-policy differences while catching
  // any reintroduced per-round allocation.
  out.max_allocs_per_event = 1.0;

  std::fprintf(stderr,
               "cluster_fig10b: %llu calls, client latency %s ms, cpu %.1f%%, %llu timeouts\n",
               static_cast<unsigned long long>(result.completed),
               LatencySummary(result.client_latency).c_str(), 100.0 * result.cpu_utilization,
               static_cast<unsigned long long>(result.timeouts));
  return out;
}

// ---------------------------------------------------------------------------
// Output & comparison (format shared with bench_engine/bench_partition)
// ---------------------------------------------------------------------------

std::string ScenarioJson(const ScenarioResult& r, double speedup, bool have_ref) {
  std::ostringstream os;
  os << "    {\"name\": \"" << r.name << "\", \"events\": " << r.events
     << ", \"wall_ns\": " << r.wall_ns;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", r.events_per_sec());
  os << ", \"events_per_sec\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.2f", r.ns_per_event());
  os << ", \"ns_per_event\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.4f", r.allocs_per_event());
  os << ", \"allocs_per_event\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.1f", r.bytes_per_event());
  os << ", \"bytes_per_event\": " << buf;
  if (r.has_seed_impl()) {
    std::snprintf(buf, sizeof(buf), "%.3f", r.seed_impl_speedup());
    os << ", \"speedup_vs_seed_impl\": " << buf;
  }
  if (have_ref) {
    std::snprintf(buf, sizeof(buf), "%.3f", speedup);
    os << ", \"speedup_vs_ref\": " << buf;
  }
  os << "}";
  return os.str();
}

// Pulls `"key": <number>` out of a one-scenario-per-line JSON file for the
// line whose "name" matches (same line-oriented contract as bench_engine).
bool LookupRef(const std::string& ref_text, const std::string& name, const std::string& key,
               double* value) {
  std::istringstream in(ref_text);
  std::string line;
  const std::string name_tag = "\"name\": \"" + name + "\"";
  const std::string key_tag = "\"" + key + "\": ";
  while (std::getline(in, line)) {
    const size_t at = line.find(name_tag);
    if (at == std::string::npos) {
      continue;
    }
    const size_t kat = line.find(key_tag);
    if (kat == std::string::npos) {
      return false;
    }
    *value = std::strtod(line.c_str() + kat + key_tag.size(), nullptr);
    return true;
  }
  return false;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) {
  using namespace actop;

  std::string json_path;
  std::string compare_path;
  bool gate = false;
  double threshold = 0.10;
  double scale = 1.0;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--compare=", 0) == 0) {
      compare_path = arg.substr(10);
    } else if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::strtod(arg.c_str() + 8, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_cluster [--json=FILE] [--compare=FILE] [--gate] "
                   "[--threshold=0.10] [--scale=1.0]\n");
      return 2;
    }
  }

  std::string ref_text;
  if (!compare_path.empty()) {
    std::ifstream in(compare_path);
    if (!in) {
      std::fprintf(stderr, "bench_cluster: cannot read reference %s\n", compare_path.c_str());
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    ref_text = os.str();
  }

  std::vector<ScenarioResult> results;
  results.push_back(RunCpuClosedLoop("cpu_closed_loop_x4", /*inflight=*/4 * 8,
                                     /*gc_pauses=*/false, /*completions=*/600'000, scale));
  results.push_back(RunCpuClosedLoop("cpu_closed_loop_x16", /*inflight=*/16 * 8,
                                     /*gc_pauses=*/false, /*completions=*/400'000, scale));
  results.push_back(RunCpuClosedLoop("cpu_gc_churn", /*inflight=*/8 * 8,
                                     /*gc_pauses=*/true, /*completions=*/500'000, scale));
  results.push_back(RunClusterFig10b(scale));

  // Acceptance headline: geomean in-binary speedup over the CPU-bound
  // scenarios (the cluster scenario has no seed twin and is excluded).
  double gate_geomean = 1.0;
  int gate_terms = 0;
  int alloc_violations = 0;
  for (const ScenarioResult& r : results) {
    if (r.has_seed_impl()) {
      gate_geomean *= r.seed_impl_speedup();
      gate_terms++;
    }
    if (r.must_be_alloc_free && r.allocs != 0) {
      alloc_violations++;
      std::fprintf(stderr, "STEADY-STATE ALLOCS: %s made %llu heap allocations\n", r.name.c_str(),
                   static_cast<unsigned long long>(r.allocs));
    }
    if (r.max_allocs_per_event >= 0.0 && r.allocs_per_event() > r.max_allocs_per_event) {
      alloc_violations++;
      std::fprintf(stderr, "STEADY-STATE ALLOCS: %s at %.4f allocs/event exceeds ceiling %.1f\n",
                   r.name.c_str(), r.allocs_per_event(), r.max_allocs_per_event);
    }
  }
  gate_geomean = gate_terms > 0 ? std::pow(gate_geomean, 1.0 / gate_terms) : 0.0;

  int regressions = 0;
  std::ostringstream body;
  body << "{\n  \"bench\": \"cluster\",\n  \"schema_version\": 1,\n";
#ifdef NDEBUG
  body << "  \"assertions\": false,\n";
#else
  body << "  \"assertions\": true,\n";
#endif
  body << "  \"scale\": " << scale << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); i++) {
    const ScenarioResult& r = results[i];
    double ref_eps = 0.0;
    const bool have_ref =
        !ref_text.empty() && LookupRef(ref_text, r.name, "events_per_sec", &ref_eps) &&
        ref_eps > 0.0;
    const double speedup = have_ref ? r.events_per_sec() / ref_eps : 0.0;
    if (have_ref && speedup < 1.0 - threshold) {
      regressions++;
      std::fprintf(stderr, "PERF REGRESSION: %s %.0f events/s vs ref %.0f (x%.3f < %.3f)\n",
                   r.name.c_str(), r.events_per_sec(), ref_eps, speedup, 1.0 - threshold);
    }
    body << ScenarioJson(r, speedup, have_ref);
    body << (i + 1 < results.size() ? ",\n" : "\n");
    const std::string vs_seed =
        r.has_seed_impl() ? "  x" + std::to_string(r.seed_impl_speedup()).substr(0, 5) + " vs seed"
                          : "";
    const std::string vs_ref = have_ref ? " (x" + std::to_string(speedup) + " vs ref)" : "";
    std::fprintf(stderr, "%-18s %12.0f events/s  %10.2f ns/event  %8.4f allocs/event%s%s\n",
                 r.name.c_str(), r.events_per_sec(), r.ns_per_event(), r.allocs_per_event(),
                 vs_seed.c_str(), vs_ref.c_str());
  }
  body << "  ],\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", gate_geomean);
    body << "  \"geomean_speedup_vs_seed_impl\": " << buf << "\n";
  }
  body << "}\n";
  std::fprintf(stderr, "geomean speedup vs seed impl (cpu_* scenarios): x%.2f\n", gate_geomean);

  const std::string text = body.str();
  std::fputs(text.c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << text;
  }
  int failures = 0;
  if (gate && regressions > 0) {
    std::fprintf(stderr, "perf gate: %d scenario(s) regressed beyond %.0f%%\n", regressions,
                 threshold * 100.0);
    failures++;
  }
  if (gate && gate_geomean < 1.5) {
    std::fprintf(stderr, "perf gate: geomean speedup vs seed impl x%.2f below the 1.5x floor\n",
                 gate_geomean);
    failures++;
  }
  if (gate && alloc_violations > 0) {
    std::fprintf(stderr, "perf gate: %d scenario(s) violated steady-state allocation limits\n",
                 alloc_violations);
    failures++;
  }
  return failures > 0 ? 1 : 0;
}
