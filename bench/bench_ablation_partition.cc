// Ablations of the partitioning design choices called out in §4.2 and
// DESIGN.md:
//   * pairwise coordination vs uncoordinated unilateral migration;
//   * candidate-set (batch) size, down to vertex-by-vertex (Ja-Be-Ja-style);
//   * edge-sampling capacity (Space-Saving top-k) vs partition quality;
//   * distributed algorithm vs the centralized offline baseline (METIS role).

#include <chrono>
#include <cstdio>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/core/offline_partitioner.h"
#include "src/core/partition_testbed.h"
#include "src/core/space_saving.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "src/workload/halo_presence.h"

namespace actop {
namespace {

WeightedGraph MakeGraph(uint64_t seed) {
  Rng rng(seed);
  // Halo-shaped: 900 vertices in 9-cliques plus random cross edges.
  return MakeClusteredGraph(100, 9, 1.0, 90, 0.1, &rng);
}

void PairwiseVsUnilateral(uint64_t seed) {
  std::printf("-- pairwise coordination vs unilateral migration --\n");
  WeightedGraph g = MakeGraph(seed);
  PairwiseConfig config;
  config.candidate_set_size = 64;
  config.balance_delta = 18;

  PartitionTestbed pairwise(&g, 10, config, seed);
  const double initial = pairwise.Cost();
  int pairwise_sweeps = 0;
  for (; pairwise_sweeps < 200; pairwise_sweeps++) {
    int moved = 0;
    for (ServerId p = 0; p < pairwise.num_servers(); p++) {
      moved += pairwise.RunRound(p);
    }
    if (moved == 0) {
      break;
    }
  }

  PartitionTestbed unilateral(&g, 10, config, seed);
  int unilateral_sweeps = 0;
  for (; unilateral_sweeps < 200; unilateral_sweeps++) {
    if (unilateral.RunUnilateralSweep() == 0) {
      break;
    }
  }

  Table t({"mode", "cut cost", "cut reduction", "imbalance", "migrations", "sweeps"});
  t.AddRow({"pairwise (ActOp)", FormatDouble(pairwise.Cost(), 1),
            FormatPercent(1.0 - pairwise.Cost() / initial),
            std::to_string(pairwise.MaxImbalance()),
            std::to_string(pairwise.total_migrations()), std::to_string(pairwise_sweeps)});
  t.AddRow({"unilateral", FormatDouble(unilateral.Cost(), 1),
            FormatPercent(1.0 - unilateral.Cost() / initial),
            std::to_string(unilateral.MaxImbalance()),
            std::to_string(unilateral.total_migrations()), std::to_string(unilateral_sweeps)});
  t.Print();
}

void CandidateSetSweep(uint64_t seed) {
  std::printf("\n-- candidate-set (batch) size: k=1 is vertex-by-vertex (Ja-Be-Ja-style) --\n");
  Table t({"k", "cut reduction", "sweeps to converge", "migrations"});
  for (size_t k : {size_t{1}, size_t{4}, size_t{16}, size_t{64}, size_t{256}}) {
    WeightedGraph g = MakeGraph(seed);
    PairwiseConfig config;
    config.candidate_set_size = k;
    config.balance_delta = 18;
    PartitionTestbed bed(&g, 10, config, seed);
    const double initial = bed.Cost();
    const int sweeps = bed.RunToConvergence(400);
    t.AddRow({std::to_string(k), FormatPercent(1.0 - bed.Cost() / initial),
              std::to_string(sweeps), std::to_string(bed.total_migrations())});
  }
  t.Print();
}

void OfflineComparison(uint64_t seed) {
  std::printf("\n-- distributed vs centralized offline partitioner (METIS role) --\n");
  WeightedGraph g = MakeGraph(seed);
  PairwiseConfig config;
  config.candidate_set_size = 64;
  config.balance_delta = 18;
  PartitionTestbed bed(&g, 10, config, seed);
  const double initial = bed.Cost();

  auto t0 = std::chrono::steady_clock::now();
  bed.RunToConvergence(400);
  const auto distributed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
  t0 = std::chrono::steady_clock::now();
  const auto offline = OfflinePartition(g, 10, 18);
  const auto offline_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  Table t({"algorithm", "cut cost", "vs random", "wall (ms)"});
  t.AddRow({"random placement", FormatDouble(initial, 1), "-", "-"});
  t.AddRow({"distributed pairwise", FormatDouble(bed.Cost(), 1),
            FormatPercent(1.0 - bed.Cost() / initial), std::to_string(distributed_ms)});
  t.AddRow({"centralized offline", FormatDouble(offline.cut_cost, 1),
            FormatPercent(1.0 - offline.cut_cost / initial), std::to_string(offline_ms)});
  t.Print();
}

void EdgeSamplingSweep(uint64_t seed) {
  std::printf("\n-- edge-sample capacity (Space-Saving top-k) in the full runtime --\n");
  Table t({"capacity", "steady remote fraction"});
  for (size_t capacity : {size_t{256}, size_t{1024}, size_t{4096}, size_t{16384}}) {
    Simulation sim;
    ClusterConfig cfg;
    cfg.num_servers = 8;
    cfg.seed = seed;
    cfg.enable_partitioning = true;
    cfg.partition.exchange_period = Seconds(1);
    cfg.partition.exchange_min_gap = Seconds(1);
    cfg.partition.max_peers_per_round = 4;
    cfg.partition.pairwise.candidate_set_size = 256;
    cfg.partition.pairwise.balance_delta = 200;
    cfg.partition.edge_sample_capacity = capacity;
    cfg.partition.edge_decay_period = Seconds(10);
    Cluster cluster(&sim, cfg);
    HaloWorkloadConfig w;
    w.target_players = 4000;
    w.idle_pool_target = 40;
    w.request_rate = 1200.0;
    HaloWorkload halo(&cluster, w);
    halo.Start();
    cluster.StartOptimizers();
    sim.RunUntil(Seconds(50));
    cluster.metrics().TakeWindow();
    sim.RunUntil(Seconds(70));
    t.AddRow({std::to_string(capacity),
              FormatPercent(cluster.metrics().TakeWindow().remote_fraction())});
  }
  t.Print();
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("seed", 7, "random seed");
  flags.Parse(argc, argv);
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::printf("== Partitioning design ablations (§4.2) ==\n\n");
  PairwiseVsUnilateral(seed);
  CandidateSetSweep(seed);
  OfflineComparison(seed);
  EdgeSamplingSweep(seed);
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
