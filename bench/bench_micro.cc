// Micro-benchmarks (google-benchmark) for the building blocks: the event
// engine, histogram, Space-Saving sampler, CPU model, the pairwise exchange
// computation, and the closed-form thread allocator.

#include <benchmark/benchmark.h>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/core/pairwise_partition.h"
#include "src/core/partition_testbed.h"
#include "src/core/space_saving.h"
#include "src/core/thread_allocator.h"
#include "src/seda/cpu.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    for (int i = 0; i < 1000; i++) {
      sim.ScheduleAfter(i, [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.Record(static_cast<int64_t>(rng.NextBounded(1'000'000'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; i++) {
    h.Record(static_cast<int64_t>(rng.NextExp(1e6)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.p99());
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_SpaceSavingObserve(benchmark::State& state) {
  SpaceSaving<uint64_t> ss(static_cast<size_t>(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    ss.Observe(rng.NextBounded(1'000'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingObserve)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_CpuModelChurn(benchmark::State& state) {
  // Throughput of the event-driven processor-sharing model with the given
  // number of concurrent jobs.
  const int concurrency = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    CpuModel cpu(&sim, 8, 0.03);
    int completed = 0;
    for (int i = 0; i < concurrency; i++) {
      std::function<void()> resubmit = [&cpu, &completed, &resubmit] {
        completed++;
      };
      cpu.BeginCompute(Micros(50), resubmit);
    }
    sim.Run();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CpuModelChurn)->Arg(8)->Arg(32)->Arg(128);

void BM_BuildPeerPlans(benchmark::State& state) {
  // O(V log k) candidate-set computation (§4.2 complexity analysis).
  const int vertices = static_cast<int>(state.range(0));
  Rng rng(3);
  WeightedGraph g = MakeClusteredGraph(vertices / 9, 9, 1.0, vertices / 10, 0.1, &rng);
  PairwiseConfig config;
  config.candidate_set_size = 64;
  PartitionTestbed bed(&g, 8, config, 3);
  const LocalGraphView view = bed.BuildView(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPeerPlans(view, config));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(view.adjacency.size()));
}
BENCHMARK(BM_BuildPeerPlans)->Arg(900)->Arg(9000)->Arg(90000);

void BM_DecideExchange(benchmark::State& state) {
  Rng rng(4);
  WeightedGraph g = MakeClusteredGraph(200, 9, 1.0, 100, 0.1, &rng);
  PairwiseConfig config;
  config.candidate_set_size = static_cast<size_t>(state.range(0));
  config.balance_delta = 64;
  PartitionTestbed bed(&g, 4, config, 4);
  const LocalGraphView p_view = bed.BuildView(0);
  const auto plans = BuildPeerPlans(p_view, config);
  if (plans.empty()) {
    state.SkipWithError("no plans");
    return;
  }
  ExchangeRequest request;
  request.from = 0;
  request.from_num_vertices = 450;
  request.candidates = plans[0].candidates;
  const LocalGraphView q_view = bed.BuildView(plans[0].peer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideExchange(q_view, request, config));
  }
}
BENCHMARK(BM_DecideExchange)->Arg(16)->Arg(64)->Arg(256);

void BM_ClosedFormAllocator(benchmark::State& state) {
  AllocationProblem problem;
  problem.processors = 8;
  problem.eta = 100e-6;
  problem.stages = {
      {.lambda = 15000.0, .s = 12000.0, .beta = 1.0},
      {.lambda = 15000.0, .s = 40000.0, .beta = 1.0},
      {.lambda = 1000.0, .s = 12000.0, .beta = 1.0},
      {.lambda = 15000.0, .s = 13000.0, .beta = 1.0},
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntegerAllocation(problem));
  }
}
BENCHMARK(BM_ClosedFormAllocator);

void BM_GradientAllocator(benchmark::State& state) {
  AllocationProblem problem;
  problem.processors = 8;
  problem.eta = 1e-7;  // below ζ: forces the projected-gradient path
  problem.stages = {
      {.lambda = 15000.0, .s = 12000.0, .beta = 1.0},
      {.lambda = 15000.0, .s = 40000.0, .beta = 1.0},
      {.lambda = 15000.0, .s = 13000.0, .beta = 1.0},
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(GradientAllocation(problem));
  }
}
BENCHMARK(BM_GradientAllocator);

}  // namespace
}  // namespace actop

BENCHMARK_MAIN();
