// Event-engine & messaging hot-path microbenchmark (the perf-gate workload).
//
// Measures the discrete-event engine itself — the substrate every figure
// bench, partitioning sweep and chaos soak in this repository runs on — in
// four steady-state scenarios plus the network messaging path:
//
//   steady_stream   H interleaved self-rescheduling event chains with a
//                   typical 3-word lambda capture (the common case across
//                   the runtime: [this, shared_ptr, small int]).
//   cancel_heavy    a standing window of pending events with a
//                   cancel+reschedule churn loop, the CpuModel::Reschedule
//                   pattern (cancel the pending completion, schedule a new
//                   one) that dominates SEDA-heavy runs.
//   periodic_heavy  hundreds of concurrent periodic ticks (timeout sweeps,
//                   controller rounds, decay timers) plus teardown.
//   net_ping_pong   envelopes hopping around a Network ring: per-message
//                   envelope allocation + delivery-event scheduling, i.e.
//                   the messaging hot path of the server runtime.
//
// Each scenario reports events/sec, ns/event and — via the global
// counting-allocator hook below — heap allocations per event in steady
// state. Output is line-oriented JSON (one scenario object per line) so
// scripts/perf_gate.sh can compare runs with basic text tools; see
// EXPERIMENTS.md ("Engine microbenchmark & perf gate") for the schema.
//
// Usage:
//   bench_engine [--json=FILE] [--compare=FILE] [--gate] [--threshold=0.10]
//                [--scale=1.0]
//
// --compare adds per-scenario "speedup_vs_ref" against a reference JSON
// (e.g. the checked-in baseline); with --gate the exit code is non-zero if
// any scenario's throughput regresses by more than --threshold.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/net/network.h"
#include "src/runtime/envelope_pool.h"
#include "src/runtime/message.h"
#include "src/sim/simulation.h"

// ---------------------------------------------------------------------------
// Counting-allocator hook: every global new/delete in this binary is counted.
// Scenarios reset the counters after setup/warmup so the reported figures are
// steady-state allocations, not one-time arena growth.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace actop {
namespace {

struct ScenarioResult {
  std::string name;
  uint64_t events = 0;    // operations driven through the engine
  uint64_t wall_ns = 0;   // wall-clock for the measured phase
  uint64_t allocs = 0;    // heap allocations during the measured phase
  uint64_t bytes = 0;     // heap bytes during the measured phase

  double events_per_sec() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(events) * 1e9 / static_cast<double>(wall_ns);
  }
  double ns_per_event() const {
    return events == 0 ? 0.0 : static_cast<double>(wall_ns) / static_cast<double>(events);
  }
  double allocs_per_event() const {
    return events == 0 ? 0.0 : static_cast<double>(allocs) / static_cast<double>(events);
  }
  double bytes_per_event() const {
    return events == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(events);
  }
};

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void ResetAllocCounters() {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// steady_stream: H interleaved self-rescheduling chains. The callback capture
// is three machine words — the typical size across the runtime (e.g.
// [this, shared_ptr<Envelope>] or [this, actor, token]).
// ---------------------------------------------------------------------------

struct ChainCtx {
  Simulation* sim = nullptr;
  uint64_t executed = 0;
  uint64_t target = 0;
  uint64_t lcg = 0x243f6a8885a308d3ULL;  // cheap per-event jitter source
  uint64_t sink = 0;                     // defeats dead-code elimination
};

void ChainTick(ChainCtx* c, uint64_t salt_a, uint64_t salt_b);

void ScheduleChainTick(ChainCtx* c, uint64_t salt_a, uint64_t salt_b) {
  c->lcg = c->lcg * 6364136223846793005ULL + 1442695040888963407ULL;
  const SimDuration delay = static_cast<SimDuration>((c->lcg >> 33) & 0x3FF) + 1;
  c->sim->ScheduleAfter(delay, [c, salt_a, salt_b] { ChainTick(c, salt_a, salt_b); });
}

void ChainTick(ChainCtx* c, uint64_t salt_a, uint64_t salt_b) {
  c->sink ^= salt_a + (salt_b << 1);
  if (++c->executed < c->target) {
    ScheduleChainTick(c, salt_a ^ c->executed, salt_b + 1);
  }
}

ScenarioResult RunSteadyStream(double scale) {
  const int kChains = 512;
  const auto target = static_cast<uint64_t>(3'000'000 * scale);
  ScenarioResult out;
  out.name = "steady_stream";

  Simulation sim;
  ChainCtx ctx;
  ctx.sim = &sim;
  ctx.target = target;
  for (int i = 0; i < kChains; i++) {
    ScheduleChainTick(&ctx, 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1),
                      static_cast<uint64_t>(i));
  }
  // Warm up: reach steady state (heap at its standing size, slabs grown).
  const uint64_t warm = target / 10;
  while (ctx.executed < warm && sim.RunOne()) {
  }

  ResetAllocCounters();
  const uint64_t t0 = NowNs();
  const uint64_t before = ctx.executed;
  while (sim.RunOne()) {
  }
  out.wall_ns = NowNs() - t0;
  out.events = ctx.executed - before;
  out.allocs = g_alloc_count.load(std::memory_order_relaxed);
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  if (ctx.sink == 0xdeadbeef) {
    std::fprintf(stderr, "sink\n");
  }
  return out;
}

// ---------------------------------------------------------------------------
// cancel_heavy: a standing window of K pending events; each step cancels the
// oldest, schedules a replacement, and periodically dispatches one event to
// advance the clock — the CpuModel cancel+reschedule pattern.
// ---------------------------------------------------------------------------

ScenarioResult RunCancelHeavy(double scale) {
  const size_t kWindow = 4096;
  const auto steps = static_cast<uint64_t>(1'500'000 * scale);
  ScenarioResult out;
  out.name = "cancel_heavy";

  Simulation sim;
  uint64_t fired = 0;
  uint64_t lcg = 0x853c49e6748fea9bULL;
  std::vector<EventId> window(kWindow, 0);
  auto schedule_one = [&](size_t slot) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const SimDuration delay = Micros(10) + static_cast<SimDuration>((lcg >> 33) & 0xFFFF);
    window[slot] = sim.ScheduleAfter(delay, [&fired] { fired++; });
  };
  for (size_t i = 0; i < kWindow; i++) {
    schedule_one(i);
  }
  // Warm up one full window pass.
  for (size_t i = 0; i < kWindow; i++) {
    sim.Cancel(window[i]);
    schedule_one(i);
  }

  ResetAllocCounters();
  const uint64_t t0 = NowNs();
  uint64_t ops = 0;
  for (uint64_t step = 0; step < steps; step++) {
    const size_t slot = static_cast<size_t>(step) % kWindow;
    sim.Cancel(window[slot]);
    schedule_one(slot);
    ops += 2;
    if ((step & 7) == 0) {
      sim.RunOne();
      ops++;
    }
  }
  out.wall_ns = NowNs() - t0;
  out.events = ops;
  out.allocs = g_alloc_count.load(std::memory_order_relaxed);
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// periodic_heavy: P concurrent periodic ticks with staggered periods, plus
// cancellation of all of them at the end (controller stop / agent teardown).
// ---------------------------------------------------------------------------

ScenarioResult RunPeriodicHeavy(double scale) {
  const int kPeriodics = 512;
  ScenarioResult out;
  out.name = "periodic_heavy";

  Simulation sim;
  uint64_t ticks = 0;
  std::vector<EventId> ids;
  ids.reserve(kPeriodics);
  for (int i = 0; i < kPeriodics; i++) {
    const SimDuration period = Micros(100 + 7 * i);
    ids.push_back(sim.SchedulePeriodic(period, [&ticks] { ticks++; }));
  }
  // Warm up.
  sim.RunUntil(Millis(20));

  ResetAllocCounters();
  const uint64_t t0 = NowNs();
  const uint64_t before = ticks;
  sim.RunUntil(Millis(20) + static_cast<SimDuration>(MillisF(400.0 * scale)));
  for (EventId id : ids) {
    sim.CancelPeriodic(id);
  }
  sim.RunUntil(sim.now() + Seconds(1));  // drain any final ticks
  out.wall_ns = NowNs() - t0;
  out.events = ticks - before;
  out.allocs = g_alloc_count.load(std::memory_order_relaxed);
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// net_ping_pong: envelopes hopping around a Network ring. Each delivery
// allocates a response envelope and forwards it — the per-message cost of
// the runtime's messaging path (envelope + delivery event).
// ---------------------------------------------------------------------------

std::shared_ptr<Envelope> MakeBenchEnvelope() { return MakeEnvelope(); }

struct RingCtx {
  Simulation* sim = nullptr;
  Network* net = nullptr;
  std::vector<NodeId> nodes;
  uint64_t delivered = 0;
  uint64_t budget = 0;
};

ScenarioResult RunNetPingPong(double scale) {
  const int kNodes = 8;
  const int kInFlight = 64;
  ScenarioResult out;
  out.name = "net_ping_pong";

  Simulation sim;
  Network net(&sim, NetworkConfig{});
  RingCtx ctx;
  ctx.sim = &sim;
  ctx.net = &net;
  ctx.budget = static_cast<uint64_t>(800'000 * scale);

  for (int i = 0; i < kNodes; i++) {
    const int self = i;
    ctx.nodes.push_back(net.AddNode([&ctx, self](NodeId, uint32_t bytes, std::shared_ptr<void>) {
      ctx.delivered++;
      if (ctx.delivered >= ctx.budget) {
        return;
      }
      auto next = MakeBenchEnvelope();
      next->kind = MessageKind::kCall;
      next->target = MakeActorId(1, ctx.delivered);
      next->payload_bytes = bytes;
      next->created_at = ctx.sim->now();
      const NodeId dest = ctx.nodes[static_cast<size_t>((self + 1) % kNodes)];
      ctx.net->Send(ctx.nodes[static_cast<size_t>(self)], dest, bytes, std::move(next));
    }));
  }
  for (int m = 0; m < kInFlight; m++) {
    auto env = MakeBenchEnvelope();
    env->kind = MessageKind::kCall;
    env->payload_bytes = 128;
    net.Send(ctx.nodes[0], ctx.nodes[static_cast<size_t>(m % kNodes)], 128, std::move(env));
  }
  // Warm up.
  const uint64_t warm = ctx.budget / 10;
  while (ctx.delivered < warm && sim.RunOne()) {
  }

  ResetAllocCounters();
  const uint64_t t0 = NowNs();
  const uint64_t before = ctx.delivered;
  while (sim.RunOne()) {
  }
  out.wall_ns = NowNs() - t0;
  out.events = ctx.delivered - before;
  out.allocs = g_alloc_count.load(std::memory_order_relaxed);
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// Output & comparison
// ---------------------------------------------------------------------------

std::string ScenarioJson(const ScenarioResult& r, double speedup, bool have_ref) {
  std::ostringstream os;
  os << "    {\"name\": \"" << r.name << "\", \"events\": " << r.events
     << ", \"wall_ns\": " << r.wall_ns;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", r.events_per_sec());
  os << ", \"events_per_sec\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.2f", r.ns_per_event());
  os << ", \"ns_per_event\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.4f", r.allocs_per_event());
  os << ", \"allocs_per_event\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.1f", r.bytes_per_event());
  os << ", \"bytes_per_event\": " << buf;
  if (have_ref) {
    std::snprintf(buf, sizeof(buf), "%.3f", speedup);
    os << ", \"speedup_vs_ref\": " << buf;
  }
  os << "}";
  return os.str();
}

// Pulls `"key": <number>` out of a one-scenario-per-line JSON file for the
// line whose "name" matches. Line-oriented by construction (see file
// comment), so plain string search is reliable.
bool LookupRef(const std::string& ref_text, const std::string& name, const std::string& key,
               double* value) {
  std::istringstream in(ref_text);
  std::string line;
  const std::string name_tag = "\"name\": \"" + name + "\"";
  const std::string key_tag = "\"" + key + "\": ";
  while (std::getline(in, line)) {
    const size_t at = line.find(name_tag);
    if (at == std::string::npos) {
      continue;
    }
    const size_t kat = line.find(key_tag);
    if (kat == std::string::npos) {
      return false;
    }
    *value = std::strtod(line.c_str() + kat + key_tag.size(), nullptr);
    return true;
  }
  return false;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) {
  using namespace actop;

  std::string json_path;
  std::string compare_path;
  bool gate = false;
  double threshold = 0.10;
  double scale = 1.0;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--compare=", 0) == 0) {
      compare_path = arg.substr(10);
    } else if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::strtod(arg.c_str() + 8, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_engine [--json=FILE] [--compare=FILE] [--gate] "
                   "[--threshold=0.10] [--scale=1.0]\n");
      return 2;
    }
  }

  std::string ref_text;
  if (!compare_path.empty()) {
    std::ifstream in(compare_path);
    if (!in) {
      std::fprintf(stderr, "bench_engine: cannot read reference %s\n", compare_path.c_str());
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    ref_text = os.str();
  }

  std::vector<ScenarioResult> results;
  results.push_back(RunSteadyStream(scale));
  results.push_back(RunCancelHeavy(scale));
  results.push_back(RunPeriodicHeavy(scale));
  results.push_back(RunNetPingPong(scale));

  int regressions = 0;
  std::ostringstream body;
  body << "{\n  \"bench\": \"engine\",\n  \"schema_version\": 1,\n";
#ifdef NDEBUG
  body << "  \"assertions\": false,\n";
#else
  body << "  \"assertions\": true,\n";
#endif
  body << "  \"scale\": " << scale << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); i++) {
    const ScenarioResult& r = results[i];
    double ref_eps = 0.0;
    const bool have_ref =
        !ref_text.empty() && LookupRef(ref_text, r.name, "events_per_sec", &ref_eps) &&
        ref_eps > 0.0;
    const double speedup = have_ref ? r.events_per_sec() / ref_eps : 0.0;
    if (have_ref && speedup < 1.0 - threshold) {
      regressions++;
      std::fprintf(stderr, "PERF REGRESSION: %s %.0f events/s vs ref %.0f (x%.3f < %.3f)\n",
                   r.name.c_str(), r.events_per_sec(), ref_eps, speedup, 1.0 - threshold);
    }
    body << ScenarioJson(r, speedup, have_ref);
    body << (i + 1 < results.size() ? ",\n" : "\n");
    const std::string suffix = have_ref ? " (x" + std::to_string(speedup) + " vs ref)" : "";
    std::fprintf(stderr, "%-16s %12.0f events/s  %8.2f ns/event  %8.4f allocs/event%s\n",
                 r.name.c_str(), r.events_per_sec(), r.ns_per_event(), r.allocs_per_event(),
                 suffix.c_str());
  }
  body << "  ]\n}\n";

  const std::string text = body.str();
  std::fputs(text.c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << text;
  }
  if (gate && regressions > 0) {
    std::fprintf(stderr, "perf gate: %d scenario(s) regressed beyond %.0f%%\n", regressions,
                 threshold * 100.0);
    return 1;
  }
  return 0;
}
