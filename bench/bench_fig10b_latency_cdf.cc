// Figure 10(b): end-to-end client latency CDF at the high-load point,
// baseline (random placement) vs ActOp actor partitioning.
//
// Paper (6K req/s): medians 41 ms -> 24 ms; p99 736 ms -> 225 ms (3x+).

#include <cstdio>

#include "bench/halo_common.h"
#include "src/common/flags.h"
#include "src/common/table.h"

namespace actop {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("players", 10000, "concurrent players (paper: 100000)");
  flags.DefineDouble("load", 4500.0, "client requests/sec (paper: 6000)");
  flags.DefineInt("measure-secs", 40, "measurement window");
  flags.DefineInt("seed", 42, "random seed");
  flags.Parse(argc, argv);

  std::printf("== Figure 10(b): end-to-end latency CDF, baseline vs actor partitioning ==\n");
  std::printf("paper reference: medians 41 -> 24 ms; p99 736 -> 225 ms\n\n");

  HaloExperimentConfig base;
  base.players = static_cast<int>(flags.GetInt("players"));
  base.request_rate = flags.GetDouble("load");
  base.measure = Seconds(flags.GetInt("measure-secs"));
  base.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  HaloExperimentConfig opt = base;
  opt.partitioning = true;

  const HaloExperimentResult baseline = RunHaloExperiment(base);
  const HaloExperimentResult actop = RunHaloExperiment(opt);

  Table t({"quantile", "baseline (ms)", "partitioning (ms)"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    t.AddRow({FormatDouble(q, 3), FormatMillis(baseline.client_latency.ValueAtQuantile(q)),
              FormatMillis(actop.client_latency.ValueAtQuantile(q))});
  }
  t.Print();

  std::printf("\nmedian: %s -> %s ms (%.0f%% lower); p99: %s -> %s ms (%.0f%% lower)\n",
              FormatMillis(baseline.client_latency.p50()).c_str(),
              FormatMillis(actop.client_latency.p50()).c_str(),
              ImprovementPercent(static_cast<double>(baseline.client_latency.p50()),
                                 static_cast<double>(actop.client_latency.p50())),
              FormatMillis(baseline.client_latency.p99()).c_str(),
              FormatMillis(actop.client_latency.p99()).c_str(),
              ImprovementPercent(static_cast<double>(baseline.client_latency.p99()),
                                 static_cast<double>(actop.client_latency.p99())));
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
