// Halo-scale macrobenchmark + gate (sixth perf-gate workload).
//
// One run at the paper-exceeding scale point: 1000 servers hosting a
// 10-million-player Halo Presence fleet on all host cores (engine shards =
// hardware threads, clamped to the server count). The paper's largest
// deployment was 10 servers / 100K players; this bench is the 100x push that
// the flattened per-actor state (slab directory, flat activation and player
// tables, lazily-sized location caches) and the high-shard-count engine work
// (tree barrier, outbox worklist) exist for.
//
// Reported per run:
//   * events/sec        — simulated milliseconds per wall-clock second over
//                         the whole run (the scale-invariant-per-shape unit
//                         shared with cluster_fig10b / bench_parallel)
//   * bytes_per_actor   — cumulative heap bytes allocated from process start
//                         through the end of warm-up, divided by the player
//                         count: the build-and-settle footprint budget per
//                         actor. Phase snapshots (post-cluster-build,
//                         post-workload-start, post-warm-up) break the total
//                         down by subsystem in the JSON.
//   * rss_per_actor     — peak resident set (VmHWM) per player, the
//                         OS-visible counterpart of bytes_per_actor
//   * measure-window allocs/bytes — steady-state churn after warm-up
//
// Partitioning is OFF: the migration data plane is gated by bench_partition
// and bench_arena already, and at K=1000 the exchange rounds would dominate
// the run with work this bench is not trying to measure. The thread
// optimizer is ON (one cheap controller per server, part of the full-system
// shape). One "scale" knob multiplies servers and players together
// (--scale=0.002 is the tier-1 smoke slice: 2 servers / 20K players), so the
// CI smoke run exercises every code path in seconds.
//
// Gates (--gate):
//   * events_per_sec vs --compare baseline (standard 10% threshold). The
//     baseline must match this host's "threads" header AND this run's
//     "scale" — unlike cluster_fig10b's sim-ms unit, halo_scale's events/s
//     moves with the population, so cross-scale comparisons are meaningless
//     and refused.
//   * bytes_per_actor <= the in-binary ceiling, applied at scale >= 0.5 only
//     (small populations amortize the fixed 1000-server overhead over too
//     few actors; the gate prints a waiver note below 0.5, the same pattern
//     as bench_parallel's low-core waiver).
//
// Usage:
//   bench_halo_scale [--json=FILE] [--compare=FILE] [--gate]
//                    [--threshold=0.10] [--scale=1.0]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/halo_common.h"
#include "src/common/sim_time.h"
#include "src/runtime/cluster.h"
#include "src/sim/sharded_engine.h"
#include "src/workload/halo_presence.h"

// ---------------------------------------------------------------------------
// Counting-allocator hook (same as bench_cluster): every global new/delete in
// this binary is counted; phase snapshots of the cumulative byte counter give
// the per-subsystem build costs and the steady-state churn.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
}  // namespace

// See bench_partition.cc: GCC flags the opaque replaced operator new against
// inlined STL deletes in this TU (known counting-allocator false positive).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace actop {
namespace {

// Full-scale shape: the 100x-the-paper target from the roadmap.
constexpr int kFullServers = 1000;
constexpr int kFullPlayers = 10'000'000;
constexpr double kFullRequestRate = 20000.0;  // modest: ~20 req/s per server
// Short simulated windows keep the full run in minutes of wall time: warm-up
// covers the initial 1.25M-game SetGame wave, measure sees the steady mix of
// status requests and first-generation game churn (first-gen endings are
// desynchronized from t=1s, so ~15% of games turn over inside the run).
constexpr SimDuration kWarmup = Seconds(3);
constexpr SimDuration kMeasure = Seconds(5);

// Build-and-settle footprint ceiling, cumulative allocated bytes per player
// through warm-up at scale 1.0 (measured 2887 bytes/actor after the
// flat-state pass: player/roster slabs plus the initial 1.25M-game SetGame
// message wave through warm-up; ~11% headroom for benign growth-path
// variation). Peak RSS at the same point is ~1718 bytes/player. Applied at
// scale >= 0.5 only — below that the fixed per-server state dominates.
constexpr double kBytesPerActorCeiling = 3200.0;

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Peak resident set size from /proc/self/status (VmHWM, kB -> bytes);
// 0 when the field is unavailable (non-Linux).
uint64_t PeakRssBytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<uint64_t>(std::strtoull(line.c_str() + 6, nullptr, 10)) * 1024;
    }
  }
  return 0;
}

struct HaloScaleResult {
  int servers = 0;
  int shards = 0;
  int64_t players = 0;
  uint64_t events = 0;    // simulated milliseconds (warmup + measure)
  uint64_t wall_ns = 0;   // whole run: build + populate + warmup + measure
  uint64_t sim_events = 0;  // engine events executed over the measure window
  uint64_t completed = 0;
  uint64_t timeouts = 0;
  uint64_t games_started = 0;
  // Cumulative allocated bytes at the phase boundaries.
  uint64_t bytes_cluster_build = 0;   // engine + 1000 servers + caches
  uint64_t bytes_workload_start = 0;  // + 10M-player tables, initial games
  uint64_t bytes_warmup = 0;          // + activation wave, directory fill
  uint64_t measure_allocs = 0;        // steady-state churn (measure window)
  uint64_t measure_bytes = 0;
  uint64_t peak_rss = 0;

  double events_per_sec() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(events) * 1e9 / static_cast<double>(wall_ns);
  }
  double bytes_per_actor() const {
    return players == 0 ? 0.0
                        : static_cast<double>(bytes_warmup) / static_cast<double>(players);
  }
  double rss_per_actor() const {
    return players == 0 ? 0.0 : static_cast<double>(peak_rss) / static_cast<double>(players);
  }
};

HaloScaleResult RunHaloScale(double scale) {
  HaloExperimentConfig config;
  config.num_servers =
      std::max(2, static_cast<int>(static_cast<double>(kFullServers) * scale + 0.5));
  config.players =
      std::max(1000, static_cast<int>(static_cast<double>(kFullPlayers) * scale + 0.5));
  config.request_rate = std::max(50.0, kFullRequestRate * scale);
  config.partitioning = false;
  config.thread_optimization = true;
  config.seed = 42;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int shards = std::min(static_cast<int>(hw), config.num_servers);

  HaloScaleResult out;
  out.servers = config.num_servers;
  out.shards = shards;
  out.players = config.players;

  const ClusterConfig cluster_config = MakeHaloClusterConfig(config);
  ShardedEngineConfig engine_config;
  engine_config.shards = shards;
  engine_config.lookahead = cluster_config.network.one_way_latency;

  const uint64_t t0 = NowNs();
  ShardedEngine engine(engine_config);
  Cluster cluster(&engine, cluster_config);
  out.bytes_cluster_build = g_alloc_bytes.load(std::memory_order_relaxed);

  HaloWorkload halo(&cluster, MakeHaloWorkloadConfig(config));
  halo.Start();
  cluster.StartOptimizers();
  out.bytes_workload_start = g_alloc_bytes.load(std::memory_order_relaxed);

  engine.RunUntil(kWarmup);
  out.bytes_warmup = g_alloc_bytes.load(std::memory_order_relaxed);

  halo.clients().ResetStats();
  cluster.ResetMetricsLatencies();
  const uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  const uint64_t alloc_bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
  const uint64_t events0 = engine.events_executed();

  engine.RunUntil(kWarmup + kMeasure);
  out.wall_ns = NowNs() - t0;

  out.sim_events = engine.events_executed() - events0;
  out.measure_allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  out.measure_bytes = g_alloc_bytes.load(std::memory_order_relaxed) - alloc_bytes0;
  out.events = static_cast<uint64_t>((kWarmup + kMeasure) / Millis(1));
  out.completed = halo.clients().completed();
  out.timeouts = halo.clients().timeouts();
  out.games_started = halo.games_started();
  out.peak_rss = PeakRssBytes();
  return out;
}

// Pulls `"key": <number>` out of a one-scenario-per-line JSON file for the
// line whose "name" matches (same contract as the other bench gates).
bool LookupRef(const std::string& ref_text, const std::string& name, const std::string& key,
               double* value) {
  std::istringstream in(ref_text);
  std::string line;
  const std::string name_tag = "\"name\": \"" + name + "\"";
  const std::string key_tag = "\"" + key + "\": ";
  while (std::getline(in, line)) {
    if (line.find(name_tag) == std::string::npos) {
      continue;
    }
    const size_t kat = line.find(key_tag);
    if (kat == std::string::npos) {
      return false;
    }
    *value = std::strtod(line.c_str() + kat + key_tag.size(), nullptr);
    return true;
  }
  return false;
}

// Top-level `"key": <number>` (header fields, outside the scenarios array).
bool LookupHeader(const std::string& ref_text, const std::string& key, double* value) {
  const std::string key_tag = "\"" + key + "\": ";
  const size_t at = ref_text.find(key_tag);
  if (at == std::string::npos) {
    return false;
  }
  *value = std::strtod(ref_text.c_str() + at + key_tag.size(), nullptr);
  return true;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) {
  using namespace actop;

  std::string json_path;
  std::string compare_path;
  bool gate = false;
  double threshold = 0.10;
  double scale = 1.0;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--compare=", 0) == 0) {
      compare_path = arg.substr(10);
    } else if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::strtod(arg.c_str() + 8, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_halo_scale [--json=FILE] [--compare=FILE] [--gate] "
                   "[--threshold=0.10] [--scale=1.0]\n");
      return 2;
    }
  }

  const unsigned hw_threads = std::thread::hardware_concurrency();

  std::string ref_text;
  if (!compare_path.empty()) {
    std::ifstream in(compare_path);
    if (!in) {
      std::fprintf(stderr, "bench_halo_scale: cannot read reference %s\n", compare_path.c_str());
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    ref_text = os.str();
    double ref_threads = 0.0;
    if (!LookupHeader(ref_text, "threads", &ref_threads)) {
      std::fprintf(stderr,
                   "bench_halo_scale: reference %s has no \"threads\" header field; "
                   "refusing to compare against an unknown host parallelism\n",
                   compare_path.c_str());
      return 2;
    }
    if (static_cast<unsigned>(ref_threads) != hw_threads) {
      std::fprintf(stderr,
                   "bench_halo_scale: reference %s was recorded with threads=%u but this "
                   "host has %u hardware threads; re-record the baseline on this host\n",
                   compare_path.c_str(), static_cast<unsigned>(ref_threads), hw_threads);
      return 2;
    }
    // Unlike the sim-ms-per-shape benches, halo_scale's throughput moves
    // with the population (--scale scales servers and players, not the
    // measure window), so a baseline is only valid at its recorded scale.
    double ref_scale = 0.0;
    if (!LookupHeader(ref_text, "scale", &ref_scale) ||
        std::abs(ref_scale - scale) > 1e-9) {
      std::fprintf(stderr,
                   "bench_halo_scale: reference %s was recorded at scale=%g but this run "
                   "uses --scale=%g; halo_scale baselines are population-specific — "
                   "run at the baseline's scale or re-record\n",
                   compare_path.c_str(), ref_scale, scale);
      return 2;
    }
  }

  const HaloScaleResult r = RunHaloScale(scale);

  double ref_eps = 0.0;
  const bool have_ref =
      !ref_text.empty() && LookupRef(ref_text, "halo_scale", "events_per_sec", &ref_eps) &&
      ref_eps > 0.0;
  const double vs_ref = have_ref ? r.events_per_sec() / ref_eps : 0.0;
  int regressions = 0;
  if (have_ref && vs_ref < 1.0 - threshold) {
    regressions++;
    std::fprintf(stderr, "PERF REGRESSION: halo_scale %.1f events/s vs ref %.1f (x%.3f < %.3f)\n",
                 r.events_per_sec(), ref_eps, vs_ref, 1.0 - threshold);
  }

  char buf[64];
  std::ostringstream body;
  body << "{\n  \"bench\": \"halo_scale\",\n  \"schema_version\": 1,\n";
#ifdef NDEBUG
  body << "  \"assertions\": false,\n";
#else
  body << "  \"assertions\": true,\n";
#endif
  body << "  \"threads\": " << hw_threads << ",\n";
  body << "  \"scale\": " << scale << ",\n  \"scenarios\": [\n";
  body << "    {\"name\": \"halo_scale\", \"servers\": " << r.servers
       << ", \"shards\": " << r.shards << ", \"players\": " << r.players
       << ", \"events\": " << r.events << ", \"wall_ns\": " << r.wall_ns;
  std::snprintf(buf, sizeof(buf), "%.1f", r.events_per_sec());
  body << ", \"events_per_sec\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.1f", r.bytes_per_actor());
  body << ", \"bytes_per_actor\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.1f", r.rss_per_actor());
  body << ", \"rss_per_actor\": " << buf;
  body << ", \"peak_rss_bytes\": " << r.peak_rss
       << ", \"bytes_cluster_build\": " << r.bytes_cluster_build
       << ", \"bytes_workload_start\": " << r.bytes_workload_start
       << ", \"bytes_warmup\": " << r.bytes_warmup
       << ", \"measure_allocs\": " << r.measure_allocs
       << ", \"measure_bytes\": " << r.measure_bytes
       << ", \"sim_events\": " << r.sim_events
       << ", \"completed\": " << r.completed << ", \"timeouts\": " << r.timeouts
       << ", \"games_started\": " << r.games_started;
  if (have_ref) {
    std::snprintf(buf, sizeof(buf), "%.3f", vs_ref);
    body << ", \"speedup_vs_ref\": " << buf;
  }
  body << "}\n  ]\n}\n";

  std::fprintf(stderr,
               "halo_scale: %d servers x %lld players on %d shard(s): %.1f sim-ms/wall-s, "
               "%.1f bytes/actor (rss %.1f), %llu calls, %llu timeouts, %llu games\n",
               r.servers, static_cast<long long>(r.players), r.shards, r.events_per_sec(),
               r.bytes_per_actor(), r.rss_per_actor(),
               static_cast<unsigned long long>(r.completed),
               static_cast<unsigned long long>(r.timeouts),
               static_cast<unsigned long long>(r.games_started));

  const std::string text = body.str();
  std::fputs(text.c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << text;
  }

  int failures = 0;
  if (gate && regressions > 0) {
    std::fprintf(stderr, "perf gate: %d scenario(s) regressed beyond %.0f%%\n", regressions,
                 threshold * 100.0);
    failures++;
  }
  if (gate) {
    if (scale >= 0.5) {
      if (r.bytes_per_actor() > kBytesPerActorCeiling) {
        std::fprintf(stderr,
                     "perf gate: %.1f bytes/actor exceeds the %.0f ceiling "
                     "(cumulative allocation through warm-up per player)\n",
                     r.bytes_per_actor(), kBytesPerActorCeiling);
        failures++;
      }
    } else {
      std::fprintf(stderr,
                   "perf gate: bytes/actor ceiling waived at --scale=%g (< 0.5): small "
                   "populations amortize the fixed per-server state over too few actors\n",
                   scale);
    }
    if (r.completed == 0) {
      std::fprintf(stderr, "perf gate: no client calls completed — the run did not make "
                           "progress\n");
      failures++;
    }
  }
  return failures > 0 ? 1 : 0;
}
