// Partitioning data-plane microbenchmark (second perf-gate workload).
//
// Measures the partitioning hot path — the edge sampler and the pairwise
// exchange planner that every PartitionAgent round runs — and, unlike
// bench_engine, measures each scenario TWICE in the same binary: once with
// the optimized implementations (Stream-Summary SpaceSaving, indexed
// ExchangeHeap + scratch-buffer BuildPeerPlans) and once with the retained
// seed implementations (space_saving_reference.h,
// pairwise_partition_reference.h). The two are proven decision-identical by
// tests/core/space_saving_fuzz_test.cc and exchange_golden_test.cc, so the
// in-binary "speedup_vs_seed_impl" is a pure data-structure comparison on
// identical inputs producing identical outputs.
//
//   observe_stream   steady-state Observe() churn on a full sampler: skewed
//                    (power-law-ish) keys over a key space far larger than
//                    capacity, so most observes evict. The PartitionAgent
//                    edge-monitor hot loop. Must run allocation-free.
//   decay_churn      the agent's decay timer: bursts of observes punctuated
//                    by Decay() halving/rebuild on a full sampler.
//   plan_build       BuildPeerPlans over a 16-server power-law local view —
//                    the per-round planning cost on the initiating side.
//   exchange_round   a full pairwise round: BuildPeerPlans on p, ship the
//                    plan toward q, DecideExchange on q (greedy joint subset
//                    selection with both heaps) — Alg. 1 end to end.
//
// Each scenario reports events/sec, ns/event and — via the global
// counting-allocator hook below — heap allocations per event in steady
// state, plus speedup_vs_seed_impl. Output is line-oriented JSON exactly
// like bench_engine so scripts/perf_gate.sh can compare runs with basic
// text tools; see EXPERIMENTS.md ("Partition microbenchmark & perf gate").
//
// Usage:
//   bench_partition [--json=FILE] [--compare=FILE] [--gate]
//                   [--threshold=0.10] [--scale=1.0]
//
// --compare adds per-scenario "speedup_vs_ref" against a reference JSON
// (e.g. the checked-in baseline); with --gate the exit code is non-zero if
// any scenario's throughput regresses by more than --threshold, OR if the
// geomean in-binary speedup over {observe_stream, exchange_round} falls
// below 1.5x (the acceptance floor is 2x on the reference machine; 1.5x
// leaves headroom for noisy CI boxes while still catching a lost rewrite).

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/core/pairwise_partition.h"
#include "src/core/pairwise_partition_reference.h"
#include "src/core/space_saving.h"
#include "src/core/space_saving_reference.h"

// ---------------------------------------------------------------------------
// Counting-allocator hook (same as bench_engine): every global new/delete in
// this binary is counted. Scenarios reset the counters after setup/warmup so
// the reported figures are steady-state allocations.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
}  // namespace

// The replaced operators pair malloc with free by construction, but when GCC
// inlines `operator delete` into STL container internals in this TU it
// reports -Wmismatched-new-delete against the opaque replaced `operator new`
// (a known false positive for counting allocators; bench_engine.cc only
// escapes it because its containers live behind the runtime library).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace actop {
namespace {

struct ScenarioResult {
  std::string name;
  uint64_t events = 0;    // operations driven through the optimized path
  uint64_t wall_ns = 0;   // wall-clock for the optimized measured phase
  uint64_t allocs = 0;    // heap allocations during the optimized phase
  uint64_t bytes = 0;     // heap bytes during the optimized phase
  uint64_t ref_wall_ns = 0;  // wall-clock for the seed-impl phase (same work)

  double events_per_sec() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(events) * 1e9 / static_cast<double>(wall_ns);
  }
  double ns_per_event() const {
    return events == 0 ? 0.0 : static_cast<double>(wall_ns) / static_cast<double>(events);
  }
  double allocs_per_event() const {
    return events == 0 ? 0.0 : static_cast<double>(allocs) / static_cast<double>(events);
  }
  double bytes_per_event() const {
    return events == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(events);
  }
  // Both phases do identical work, so the speedup is the wall-clock ratio.
  double seed_impl_speedup() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(ref_wall_ns) / static_cast<double>(wall_ns);
  }
};

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void ResetAllocCounters() {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes.store(0, std::memory_order_relaxed);
}

uint64_t g_sink = 0;  // defeats dead-code elimination across scenarios

// ---------------------------------------------------------------------------
// Shared input generators. Deterministic (seeded Rng) so the optimized and
// seed-impl phases of every scenario consume byte-identical inputs.
// ---------------------------------------------------------------------------

// Skewed key stream over a key space much larger than any sampler capacity:
// squaring a uniform draw concentrates mass on small keys (heavy hitters)
// while keeping a long eviction-forcing tail — the same shape the edge
// monitor sees from power-law actor communication.
std::vector<uint64_t> MakeKeyStream(size_t n, uint64_t seed) {
  constexpr uint64_t kKeySpace = 1 << 20;
  Rng rng(seed);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) {
    const uint64_t raw = rng.NextBounded(kKeySpace);
    k = raw * raw / kKeySpace;
  }
  return keys;
}

// Power-law LocalGraphView: `sampled` local vertices with degrees skewed
// toward 1 but reaching 64, edges split between local peers and uniformly
// chosen remote servers, integer weights (exact in double, so both
// implementations sum them bit-identically in any association).
LocalGraphView MakePowerLawView(ServerId self, int num_servers, int64_t per_server, int sampled,
                                uint64_t seed) {
  Rng rng(seed);
  LocalGraphView view;
  view.self = self;
  view.num_local_vertices = per_server;
  const auto vid = [](ServerId s, uint64_t i) {
    return static_cast<VertexId>(s) * 1'000'000ULL + i;
  };
  const auto n = static_cast<uint64_t>(per_server);
  for (int i = 0; i < sampled; i++) {
    const VertexId me = vid(self, rng.NextBounded(n));
    auto& adj = view.adjacency[me];
    const double u = rng.NextDouble();
    const int degree = 1 + static_cast<int>(63.0 * u * u * u * u);
    for (int e = 0; e < degree; e++) {
      VertexId other;
      if (num_servers > 1 && rng.NextBool(0.5)) {
        const auto hop = 1 + static_cast<ServerId>(rng.NextBounded(
                                 static_cast<uint64_t>(num_servers - 1)));
        const ServerId s = (self + hop) % num_servers;
        other = vid(s, rng.NextBounded(n));
        view.location[other] = s;
      } else {
        other = vid(self, rng.NextBounded(n));
      }
      if (other == me) {
        continue;
      }
      adj[other] += 1.0 + static_cast<double>(rng.NextBounded(16));
    }
  }
  return view;
}

size_t CountEdges(const LocalGraphView& view) {
  size_t edges = 0;
  for (const auto& [v, adj] : view.adjacency) {
    edges += adj.size();
  }
  return edges;
}

// ---------------------------------------------------------------------------
// observe_stream: steady-state Observe() on a full sampler. The measured
// phase of the optimized sketch must be allocation-free: the Stream-Summary
// slab, bucket free list, and FlatHashMap churn in place once warm.
// ---------------------------------------------------------------------------

template <typename Sketch>
uint64_t TimeObserves(Sketch* sketch, const std::vector<uint64_t>& keys, size_t from, size_t to) {
  const uint64_t t0 = NowNs();
  for (size_t i = from; i < to; i++) {
    sketch->Observe(keys[i]);
  }
  return NowNs() - t0;
}

ScenarioResult RunObserveStream(double scale) {
  constexpr size_t kCapacity = 8192;
  const auto ops = static_cast<size_t>(4'000'000 * scale);
  const size_t warm = ops / 10;
  ScenarioResult out;
  out.name = "observe_stream";

  const std::vector<uint64_t> keys = MakeKeyStream(ops, 0x0b5e7fe5ULL);

  SpaceSaving<uint64_t> opt(kCapacity);
  TimeObserves(&opt, keys, 0, warm);
  ResetAllocCounters();
  out.wall_ns = TimeObserves(&opt, keys, warm, ops);
  out.events = ops - warm;
  out.allocs = g_alloc_count.load(std::memory_order_relaxed);
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  g_sink ^= opt.total_observed() + opt.size();

  SpaceSavingReference<uint64_t> ref(kCapacity);
  TimeObserves(&ref, keys, 0, warm);
  out.ref_wall_ns = TimeObserves(&ref, keys, warm, ops);
  g_sink ^= ref.total_observed() + ref.size();
  return out;
}

// ---------------------------------------------------------------------------
// decay_churn: the PartitionAgent decay timer against a full sampler —
// bursts of observes punctuated by Decay(), which the seed rebuilt through a
// fresh std::map and the rewrite relinks in place.
// ---------------------------------------------------------------------------

template <typename Sketch>
uint64_t TimeDecayCycles(Sketch* sketch, const std::vector<uint64_t>& keys, size_t cycles,
                         size_t burst) {
  const uint64_t t0 = NowNs();
  size_t at = 0;
  for (size_t c = 0; c < cycles; c++) {
    for (size_t i = 0; i < burst; i++) {
      sketch->Observe(keys[at]);
      at = at + 1 == keys.size() ? 0 : at + 1;
    }
    sketch->Decay();
  }
  return NowNs() - t0;
}

ScenarioResult RunDecayChurn(double scale) {
  constexpr size_t kCapacity = 4096;
  constexpr size_t kBurst = 2 * kCapacity;
  const auto cycles = static_cast<size_t>(400 * scale);
  constexpr size_t kWarmCycles = 4;
  ScenarioResult out;
  out.name = "decay_churn";

  const std::vector<uint64_t> keys = MakeKeyStream(kBurst * 16, 0xdecafULL);

  SpaceSaving<uint64_t> opt(kCapacity);
  TimeDecayCycles(&opt, keys, kWarmCycles, kBurst);
  ResetAllocCounters();
  out.wall_ns = TimeDecayCycles(&opt, keys, cycles, kBurst);
  out.events = cycles * (kBurst + 1);
  out.allocs = g_alloc_count.load(std::memory_order_relaxed);
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  g_sink ^= opt.total_observed() + opt.size();

  SpaceSavingReference<uint64_t> ref(kCapacity);
  TimeDecayCycles(&ref, keys, kWarmCycles, kBurst);
  out.ref_wall_ns = TimeDecayCycles(&ref, keys, cycles, kBurst);
  g_sink ^= ref.total_observed() + ref.size();
  return out;
}

// ---------------------------------------------------------------------------
// plan_build: BuildPeerPlans over a 16-server power-law view. Events are
// edge-scans (iterations x edges): the planner's work is linear in the
// sampled edge set, so this is its natural unit cost.
// ---------------------------------------------------------------------------

template <typename Fn>
uint64_t TimePlanBuilds(Fn&& build, const LocalGraphView& view, const PairwiseConfig& config,
                        size_t iterations) {
  const uint64_t t0 = NowNs();
  for (size_t i = 0; i < iterations; i++) {
    const std::vector<PeerPlan> plans = build(view, config);
    g_sink ^= plans.size() + (plans.empty() ? 0 : plans.front().candidates.size());
  }
  return NowNs() - t0;
}

ScenarioResult RunPlanBuild(double scale) {
  const auto iterations = static_cast<size_t>(300 * scale);
  constexpr size_t kWarm = 3;
  ScenarioResult out;
  out.name = "plan_build";

  const LocalGraphView view = MakePowerLawView(/*self=*/0, /*num_servers=*/16,
                                               /*per_server=*/4000, /*sampled=*/3000, 0x91a4ULL);
  PairwiseConfig config;
  config.candidate_set_size = 64;
  config.balance_delta = 16;

  const auto opt_build = [](const LocalGraphView& v, const PairwiseConfig& c) {
    return BuildPeerPlans(v, c);
  };
  const auto ref_build = [](const LocalGraphView& v, const PairwiseConfig& c) {
    return seedref::BuildPeerPlans(v, c);
  };

  TimePlanBuilds(opt_build, view, config, kWarm);
  ResetAllocCounters();
  out.wall_ns = TimePlanBuilds(opt_build, view, config, iterations);
  out.events = iterations * CountEdges(view);
  out.allocs = g_alloc_count.load(std::memory_order_relaxed);
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed);

  TimePlanBuilds(ref_build, view, config, kWarm);
  out.ref_wall_ns = TimePlanBuilds(ref_build, view, config, iterations);
  return out;
}

// ---------------------------------------------------------------------------
// exchange_round: Alg. 1 end to end between two servers — p builds its plan,
// ships it, q runs the greedy joint subset selection. One event = one round.
// ---------------------------------------------------------------------------

template <typename PlanFn, typename DecideFn>
uint64_t TimeExchangeRounds(PlanFn&& plan_fn, DecideFn&& decide_fn, const LocalGraphView& p_view,
                            const LocalGraphView& q_view, const PairwiseConfig& config,
                            size_t rounds) {
  const uint64_t t0 = NowNs();
  for (size_t r = 0; r < rounds; r++) {
    const std::vector<PeerPlan> plans = plan_fn(p_view, config);
    const PeerPlan* toward_q = nullptr;
    for (const PeerPlan& plan : plans) {
      if (plan.peer == q_view.self) {
        toward_q = &plan;
        break;
      }
    }
    if (toward_q == nullptr) {
      continue;
    }
    ExchangeRequest request;
    request.from = p_view.self;
    request.from_num_vertices = p_view.num_local_vertices;
    request.candidates = toward_q->candidates;
    const ExchangeDecision decision = decide_fn(q_view, request, config);
    g_sink ^= decision.accepted.size() + decision.counter_offer.size();
  }
  return NowNs() - t0;
}

ScenarioResult RunExchangeRound(double scale) {
  const auto rounds = static_cast<size_t>(300 * scale);
  constexpr size_t kWarm = 3;
  ScenarioResult out;
  out.name = "exchange_round";

  const LocalGraphView p_view = MakePowerLawView(/*self=*/0, /*num_servers=*/2,
                                                 /*per_server=*/3000, /*sampled=*/2500, 0xabcdULL);
  const LocalGraphView q_view = MakePowerLawView(/*self=*/1, /*num_servers=*/2,
                                                 /*per_server=*/3000, /*sampled=*/2500, 0xef01ULL);
  PairwiseConfig config;
  config.candidate_set_size = 64;
  config.balance_delta = 16;

  const auto opt_plan = [](const LocalGraphView& v, const PairwiseConfig& c) {
    return BuildPeerPlans(v, c);
  };
  const auto opt_decide = [](const LocalGraphView& v, const ExchangeRequest& r,
                             const PairwiseConfig& c) { return DecideExchange(v, r, c); };
  const auto ref_plan = [](const LocalGraphView& v, const PairwiseConfig& c) {
    return seedref::BuildPeerPlans(v, c);
  };
  const auto ref_decide = [](const LocalGraphView& v, const ExchangeRequest& r,
                             const PairwiseConfig& c) { return seedref::DecideExchange(v, r, c); };

  // One-time sanity: both paths must reach identical decisions on this
  // instance (the golden/fuzz tests prove this broadly; this catches a
  // mis-built benchmark input before anyone trusts the numbers).
  {
    const std::vector<PeerPlan> plans = BuildPeerPlans(p_view, config);
    const std::vector<PeerPlan> ref_plans = seedref::BuildPeerPlans(p_view, config);
    bool toward_q = false;
    for (const PeerPlan& plan : plans) {
      toward_q |= plan.peer == q_view.self && !plan.candidates.empty();
    }
    if (!toward_q || plans.size() != ref_plans.size()) {
      std::fprintf(stderr, "bench_partition: degenerate exchange_round instance\n");
      std::exit(2);
    }
    ExchangeRequest request;
    request.from = p_view.self;
    request.from_num_vertices = p_view.num_local_vertices;
    request.candidates = plans.front().candidates;
    const ExchangeDecision opt = DecideExchange(q_view, request, config);
    const ExchangeDecision ref = seedref::DecideExchange(q_view, request, config);
    if (opt.accepted != ref.accepted ||
        opt.counter_offer.size() != ref.counter_offer.size()) {
      std::fprintf(stderr, "bench_partition: optimized/seed decisions diverged\n");
      std::exit(2);
    }
  }

  TimeExchangeRounds(opt_plan, opt_decide, p_view, q_view, config, kWarm);
  ResetAllocCounters();
  out.wall_ns = TimeExchangeRounds(opt_plan, opt_decide, p_view, q_view, config, rounds);
  out.events = rounds;
  out.allocs = g_alloc_count.load(std::memory_order_relaxed);
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed);

  TimeExchangeRounds(ref_plan, ref_decide, p_view, q_view, config, kWarm);
  out.ref_wall_ns = TimeExchangeRounds(ref_plan, ref_decide, p_view, q_view, config, rounds);
  return out;
}

// ---------------------------------------------------------------------------
// Output & comparison (format shared with bench_engine; see EXPERIMENTS.md)
// ---------------------------------------------------------------------------

std::string ScenarioJson(const ScenarioResult& r, double speedup, bool have_ref) {
  std::ostringstream os;
  os << "    {\"name\": \"" << r.name << "\", \"events\": " << r.events
     << ", \"wall_ns\": " << r.wall_ns;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", r.events_per_sec());
  os << ", \"events_per_sec\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.2f", r.ns_per_event());
  os << ", \"ns_per_event\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.4f", r.allocs_per_event());
  os << ", \"allocs_per_event\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.1f", r.bytes_per_event());
  os << ", \"bytes_per_event\": " << buf;
  std::snprintf(buf, sizeof(buf), "%.3f", r.seed_impl_speedup());
  os << ", \"speedup_vs_seed_impl\": " << buf;
  if (have_ref) {
    std::snprintf(buf, sizeof(buf), "%.3f", speedup);
    os << ", \"speedup_vs_ref\": " << buf;
  }
  os << "}";
  return os.str();
}

// Pulls `"key": <number>` out of a one-scenario-per-line JSON file for the
// line whose "name" matches (same line-oriented contract as bench_engine).
bool LookupRef(const std::string& ref_text, const std::string& name, const std::string& key,
               double* value) {
  std::istringstream in(ref_text);
  std::string line;
  const std::string name_tag = "\"name\": \"" + name + "\"";
  const std::string key_tag = "\"" + key + "\": ";
  while (std::getline(in, line)) {
    const size_t at = line.find(name_tag);
    if (at == std::string::npos) {
      continue;
    }
    const size_t kat = line.find(key_tag);
    if (kat == std::string::npos) {
      return false;
    }
    *value = std::strtod(line.c_str() + kat + key_tag.size(), nullptr);
    return true;
  }
  return false;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) {
  using namespace actop;

  std::string json_path;
  std::string compare_path;
  bool gate = false;
  double threshold = 0.10;
  double scale = 1.0;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--compare=", 0) == 0) {
      compare_path = arg.substr(10);
    } else if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::strtod(arg.c_str() + 8, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_partition [--json=FILE] [--compare=FILE] [--gate] "
                   "[--threshold=0.10] [--scale=1.0]\n");
      return 2;
    }
  }

  std::string ref_text;
  if (!compare_path.empty()) {
    std::ifstream in(compare_path);
    if (!in) {
      std::fprintf(stderr, "bench_partition: cannot read reference %s\n", compare_path.c_str());
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    ref_text = os.str();
  }

  std::vector<ScenarioResult> results;
  results.push_back(RunObserveStream(scale));
  results.push_back(RunDecayChurn(scale));
  results.push_back(RunPlanBuild(scale));
  results.push_back(RunExchangeRound(scale));

  // Acceptance headline: geomean in-binary speedup over the two scenarios
  // the issue gates (observe-heavy sampling and the full exchange round).
  double gate_geomean = 1.0;
  int gate_terms = 0;
  for (const ScenarioResult& r : results) {
    if (r.name == "observe_stream" || r.name == "exchange_round") {
      gate_geomean *= r.seed_impl_speedup();
      gate_terms++;
    }
  }
  gate_geomean = gate_terms > 0 ? std::pow(gate_geomean, 1.0 / gate_terms) : 0.0;

  int regressions = 0;
  std::ostringstream body;
  body << "{\n  \"bench\": \"partition\",\n  \"schema_version\": 1,\n";
#ifdef NDEBUG
  body << "  \"assertions\": false,\n";
#else
  body << "  \"assertions\": true,\n";
#endif
  body << "  \"scale\": " << scale << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); i++) {
    const ScenarioResult& r = results[i];
    double ref_eps = 0.0;
    const bool have_ref =
        !ref_text.empty() && LookupRef(ref_text, r.name, "events_per_sec", &ref_eps) &&
        ref_eps > 0.0;
    const double speedup = have_ref ? r.events_per_sec() / ref_eps : 0.0;
    if (have_ref && speedup < 1.0 - threshold) {
      regressions++;
      std::fprintf(stderr, "PERF REGRESSION: %s %.0f events/s vs ref %.0f (x%.3f < %.3f)\n",
                   r.name.c_str(), r.events_per_sec(), ref_eps, speedup, 1.0 - threshold);
    }
    body << ScenarioJson(r, speedup, have_ref);
    body << (i + 1 < results.size() ? ",\n" : "\n");
    const std::string suffix = have_ref ? " (x" + std::to_string(speedup) + " vs ref)" : "";
    std::fprintf(stderr,
                 "%-16s %12.0f events/s  %10.2f ns/event  %8.4f allocs/event  x%5.2f vs seed%s\n",
                 r.name.c_str(), r.events_per_sec(), r.ns_per_event(), r.allocs_per_event(),
                 r.seed_impl_speedup(), suffix.c_str());
  }
  body << "  ],\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", gate_geomean);
    body << "  \"geomean_speedup_vs_seed_impl\": " << buf << "\n";
  }
  body << "}\n";
  std::fprintf(stderr, "geomean speedup vs seed impls (observe_stream, exchange_round): x%.2f\n",
               gate_geomean);
  if (g_sink == 0xdeadbeef) {
    std::fprintf(stderr, "sink\n");
  }

  const std::string text = body.str();
  std::fputs(text.c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << text;
  }
  int failures = 0;
  if (gate && regressions > 0) {
    std::fprintf(stderr, "perf gate: %d scenario(s) regressed beyond %.0f%%\n", regressions,
                 threshold * 100.0);
    failures++;
  }
  if (gate && gate_geomean < 1.5) {
    std::fprintf(stderr,
                 "perf gate: geomean speedup vs seed impls x%.2f below the 1.5x floor\n",
                 gate_geomean);
    failures++;
  }
  return failures > 0 ? 1 : 0;
}
