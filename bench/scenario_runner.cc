// Scenario fleet runner: executes one open-loop scenario (src/load/) and
// emits its canonical JSON SLO report.
//
// One scenario per process, on purpose: the binary replaces global operator
// new with a counting allocator (the bench_engine/bench_partition/
// bench_cluster pattern), and per-process runs keep the allocs/event figure
// for each scenario free of another scenario's warm pools. The allocs/event
// number is recorded in the report for trend-watching but is NOT gated here
// — the perf gates own allocation ratchets (see EXPERIMENTS.md).
//
// Usage:
//   scenario_runner --scenario=NAME [--scale=1.0] [--seed=1] [--chaos]
//                   [--threads=1] [--json=FILE] [--check] [--list]
//
// --check exits non-zero when the report fails its SLO (or records any
// invariant violation) — this is what the ctest scenario entries run.
// Scenario reports are not perf baselines; scripts/perf_gate.sh refuses
// them by schema marker.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>

#include "src/common/flags.h"
#include "src/load/report.h"
#include "src/load/scenarios.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

// See bench_partition.cc: GCC flags the opaque replaced operator new against
// inlined STL deletes in this TU (known counting-allocator false positive).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace actop {
namespace {

int Run(int argc, char** argv) {
  Flags flags;
  flags.DefineString("scenario", "", "scenario name (see --list)");
  flags.DefineDouble("scale", 1.0, "population & rate multiplier (1.0 = full)");
  flags.DefineInt("seed", 1, "scenario seed (same seed => byte-identical report)");
  flags.DefineBool("chaos", false, "inject faults during the measure window");
  flags.DefineInt("threads", 1, "engine shards (1 = serial; >1 = parallel windows)");
  flags.DefineString("json", "", "write the report to FILE (default: stdout)");
  flags.DefineBool("check", false, "exit non-zero if the SLO fails");
  flags.DefineBool("list", false, "list scenarios and exit");
  flags.Parse(argc, argv);

  if (flags.GetBool("list")) {
    for (const ScenarioDef& def : ScenarioRegistry()) {
      std::printf("%-16s %s\n", def.name, def.summary);
    }
    return 0;
  }

  const std::string name = flags.GetString("scenario");
  const ScenarioDef* def = FindScenario(name);
  if (def == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n", name.c_str());
    return 2;
  }

  ScenarioOptions options;
  options.scale = flags.GetDouble("scale");
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.chaos = flags.GetBool("chaos");
  options.threads = static_cast<int>(flags.GetInt("threads"));
  options.alloc_counter = [] { return g_alloc_count.load(std::memory_order_relaxed); };

  const ScenarioReport report = def->run(options);
  const std::string json = ScenarioReportToJson(report);

  const std::string& path = flags.GetString("json");
  if (path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
  } else {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 2;
    }
    out << json;
  }

  if (!report.slo_failures.empty()) {
    for (const std::string& failure : report.slo_failures) {
      std::fprintf(stderr, "SLO FAIL [%s]: %s\n", report.scenario.c_str(), failure.c_str());
    }
    if (flags.GetBool("check")) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Run(argc, argv); }
