// Figure 11(b): combining actor partitioning with thread allocation.
//
// Halo Presence at the high-load point. Paper: partitioning is the primary
// factor; adding thread allocation brings the total to 55% median and 75%
// p99 improvement over the baseline. The chosen allocation also shifts when
// partitioning is on (less sender work -> more worker threads).

#include <cstdio>

#include "bench/halo_common.h"
#include "src/common/flags.h"
#include "src/common/table.h"

namespace actop {
namespace {

std::string MeanAllocation(const HaloExperimentResult& r) {
  if (r.thread_allocations.empty()) {
    return "-";
  }
  double sums[4] = {0, 0, 0, 0};
  for (const auto& alloc : r.thread_allocations) {
    for (int i = 0; i < 4; i++) {
      sums[i] += alloc[static_cast<size_t>(i)];
    }
  }
  const auto n = static_cast<double>(r.thread_allocations.size());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "r%.0f/w%.0f/ss%.0f/cs%.0f", sums[0] / n, sums[1] / n,
                sums[2] / n, sums[3] / n);
  return buf;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("players", 10000, "concurrent players (paper: 100000)");
  flags.DefineDouble("load", 4500.0, "client requests/sec (paper: 6000)");
  flags.DefineInt("measure-secs", 40, "measurement window per run");
  flags.DefineInt("seed", 42, "random seed");
  flags.Parse(argc, argv);

  std::printf("== Figure 11(b): partitioning alone vs partitioning + thread allocation ==\n");
  std::printf("paper reference: combined 55%% median / 75%% p99 improvement over baseline\n\n");

  HaloExperimentConfig base;
  base.players = static_cast<int>(flags.GetInt("players"));
  base.request_rate = flags.GetDouble("load");
  base.measure = Seconds(flags.GetInt("measure-secs"));
  base.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  HaloExperimentConfig part = base;
  part.partitioning = true;
  HaloExperimentConfig both = part;
  both.thread_optimization = true;

  const HaloExperimentResult b = RunHaloExperiment(base);
  const HaloExperimentResult p = RunHaloExperiment(part);
  const HaloExperimentResult c = RunHaloExperiment(both);

  auto impr = [&](const Histogram& opt, double q) {
    return FormatDouble(
               ImprovementPercent(static_cast<double>(b.client_latency.ValueAtQuantile(q)),
                                  static_cast<double>(opt.ValueAtQuantile(q))),
               1) +
           "%";
  };

  Table t({"configuration", "median impr", "p95 impr", "p99 impr", "med(ms)", "p99(ms)", "CPU",
           "mean allocation"});
  t.AddRow({"baseline", "-", "-", "-", FormatMillis(b.client_latency.p50()),
            FormatMillis(b.client_latency.p99()), FormatPercent(b.cpu_utilization),
            "r8/w8/ss8/cs8"});
  t.AddRow({"partitioning only", impr(p.client_latency, 0.5), impr(p.client_latency, 0.95),
            impr(p.client_latency, 0.99), FormatMillis(p.client_latency.p50()),
            FormatMillis(p.client_latency.p99()), FormatPercent(p.cpu_utilization),
            "r8/w8/ss8/cs8"});
  t.AddRow({"partitioning + threads", impr(c.client_latency, 0.5), impr(c.client_latency, 0.95),
            impr(c.client_latency, 0.99), FormatMillis(c.client_latency.p50()),
            FormatMillis(c.client_latency.p99()), FormatPercent(c.cpu_utilization),
            MeanAllocation(c)});
  t.Print();
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
