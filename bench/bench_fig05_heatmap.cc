// Figure 5: server request latency under different thread allocations.
//
// Counter application at 15K req/s on one 8-core server; worker and
// (client-)sender thread counts sweep 2..8 while receive and server-sender
// stay at the default 8. The paper's heat map (median latency, ms):
//   * best  ≈ 9.9 ms at (2 workers, 3 senders)
//   * worst ≈ 38.2 ms at (8 workers, 6 senders)
//   * the default (8, 8) configuration is among the worst
//   * latency grows with worker threads, and the 2-sender column pays a
//     queueing penalty.

#include <cstdio>
#include <string>

#include "bench/counter_common.h"
#include "src/common/flags.h"
#include "src/common/table.h"

namespace actop {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineDouble("load", 15000.0, "requests per second (paper: 15000)");
  flags.DefineInt("measure-secs", 15, "measurement window per cell");
  flags.DefineInt("min-threads", 2, "sweep lower bound");
  flags.DefineInt("max-threads", 8, "sweep upper bound");
  flags.DefineInt("step", 2, "sweep step (paper sweeps every value; default "
                             "2 keeps the default run quick)");
  flags.DefineInt("seed", 17, "random seed");
  flags.Parse(argc, argv);

  const int lo = static_cast<int>(flags.GetInt("min-threads"));
  const int hi = static_cast<int>(flags.GetInt("max-threads"));
  const int step = static_cast<int>(flags.GetInt("step"));

  std::printf("== Figure 5: median latency (ms) vs (worker, sender) threads ==\n");
  std::printf("paper reference: best 9.9 ms @ (2w,3s); worst 38.2 ms @ (8w,6s); "
              "default (8w,8s) 28.5 ms\n\n");

  std::vector<std::string> headers = {"workers\\senders"};
  for (int s = lo; s <= hi; s += step) {
    headers.push_back(std::to_string(s));
  }
  Table t(headers);

  double best = 1e18;
  double worst = 0.0;
  int best_w = 0, best_s = 0, worst_w = 0, worst_s = 0;
  for (int w = lo; w <= hi; w += step) {
    std::vector<std::string> row = {std::to_string(w)};
    for (int s = lo; s <= hi; s += step) {
      CounterExperimentConfig cfg;
      cfg.request_rate = flags.GetDouble("load");
      cfg.threads = {8, w, 8, s};
      cfg.measure = Seconds(flags.GetInt("measure-secs"));
      cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
      const CounterExperimentResult result = RunCounterExperiment(cfg);
      const double median_ms = ToMillis(result.latency.p50());
      row.push_back(FormatDouble(median_ms, 2));
      if (median_ms < best) {
        best = median_ms;
        best_w = w;
        best_s = s;
      }
      if (median_ms > worst) {
        worst = median_ms;
        worst_w = w;
        worst_s = s;
      }
    }
    t.AddRow(std::move(row));
  }
  t.Print();
  std::printf("\nbest %.2f ms @ (%dw,%ds); worst %.2f ms @ (%dw,%ds); ratio %.1fx "
              "(paper: ~4x, best at low thread counts)\n",
              best, best_w, best_s, worst, worst_w, worst_s, worst / best);
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
