#include "bench/counter_common.h"

#include "src/sim/simulation.h"

namespace actop {

ClusterConfig MakeCounterClusterConfig(const CounterExperimentConfig& config) {
  ClusterConfig cfg;
  cfg.num_servers = 1;
  cfg.seed = config.seed;
  // Heavier GC profile for the saturated single-server micro-benchmark
  // (see the file comment in counter_common.h).
  cfg.server.gc_base_duration = Millis(5);
  cfg.server.gc_per_thread_factor = 0.18;
  cfg.enable_thread_optimization = config.thread_optimization;
  cfg.thread_controller.period = Seconds(1);
  cfg.thread_controller.eta = 100e-6;
  return cfg;
}

CounterExperimentResult RunCounterExperiment(const CounterExperimentConfig& config) {
  Simulation sim;
  Cluster cluster(&sim, MakeCounterClusterConfig(config));
  CounterWorkloadConfig w;
  w.num_actors = config.num_actors;
  w.request_rate = config.request_rate;
  w.seed = config.seed ^ 0xfeed;
  CounterWorkload workload(&cluster, w);
  Server& server = cluster.server(0);
  server.ApplyThreadAllocation(
      {config.threads[0], config.threads[1], config.threads[2], config.threads[3]});
  workload.Start();
  cluster.StartOptimizers();

  sim.RunUntil(config.warmup);
  workload.clients().ResetStats();
  for (int i = 0; i < Server::kNumStages; i++) {
    server.stage(i).TakeWindow();
  }
  const double busy0 = server.cpu().busy_core_nanos();
  const SimTime t0 = sim.now();
  sim.RunUntil(t0 + config.measure);
  const double busy1 = server.cpu().busy_core_nanos();

  CounterExperimentResult result;
  result.latency = workload.clients().latency();
  result.cpu_utilization =
      (busy1 - busy0) /
      (static_cast<double>(server.config().cores) * static_cast<double>(sim.now() - t0));

  // Per-request breakdown (Fig 4): with one request per stage event, mean
  // per-stage queue wait and in-service time divide by completed requests;
  // shares are relative to the end-to-end client mean.
  const double requests = static_cast<double>(result.latency.count());
  const double e2e_mean = result.latency.mean();
  double accounted = 0.0;
  for (int i = 0; i < Server::kNumStages; i++) {
    const StageWindow win = server.stage(i).TakeWindow();
    if (requests <= 0 || e2e_mean <= 0) {
      continue;
    }
    const double queue = win.sum_queue_wait / requests;
    const double processing = win.sum_wallclock / requests;
    result.stages[static_cast<size_t>(i)].queue_share = queue / e2e_mean;
    result.stages[static_cast<size_t>(i)].processing_share = processing / e2e_mean;
    accounted += (queue + processing) / e2e_mean;
  }
  if (e2e_mean > 0) {
    // Two one-way network traversals (client -> server -> client).
    const double network = 2.0 * static_cast<double>(Micros(250));
    result.network_share = network / e2e_mean;
    accounted += result.network_share;
    result.other_share = std::max(0.0, 1.0 - accounted);
  }
  for (int i = 0; i < Server::kNumStages; i++) {
    result.final_threads.push_back(server.stage(i).threads());
  }
  return result;
}

}  // namespace actop
