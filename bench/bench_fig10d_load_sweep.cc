// Figure 10(d): latency reduction from actor partitioning at different
// system loads — the gains grow with load.
//
// Paper (2K/4K/6K req/s): improvements rise with load, reaching ~42% median,
// ~78% p95 and ~69% p99 at 6K req/s.

#include <cstdio>

#include "bench/halo_common.h"
#include "src/common/flags.h"
#include "src/common/table.h"

namespace actop {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("players", 10000, "concurrent players (paper: 100000)");
  flags.DefineDouble("load1", 1500.0, "low load (paper: 2000)");
  flags.DefineDouble("load2", 3000.0, "mid load (paper: 4000)");
  flags.DefineDouble("load3", 4500.0, "high load (paper: 6000)");
  flags.DefineInt("measure-secs", 40, "measurement window per run");
  flags.DefineInt("seed", 42, "random seed");
  flags.Parse(argc, argv);

  std::printf("== Figure 10(d): latency improvement from partitioning vs load ==\n");
  std::printf("paper reference: improvement grows with load; at the top load ~42%% median, "
              "~69%% p99\n\n");

  Table t({"load (req/s)", "median impr", "p95 impr", "p99 impr", "base med(ms)",
           "actop med(ms)"});
  double prev_median_impr = -1.0;
  bool monotone = true;
  for (double load : {flags.GetDouble("load1"), flags.GetDouble("load2"),
                      flags.GetDouble("load3")}) {
    HaloExperimentConfig base;
    base.players = static_cast<int>(flags.GetInt("players"));
    base.request_rate = load;
    base.measure = Seconds(flags.GetInt("measure-secs"));
    base.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    HaloExperimentConfig opt = base;
    opt.partitioning = true;

    const HaloExperimentResult b = RunHaloExperiment(base);
    const HaloExperimentResult o = RunHaloExperiment(opt);
    const double med = ImprovementPercent(static_cast<double>(b.client_latency.p50()),
                                          static_cast<double>(o.client_latency.p50()));
    const double p95 = ImprovementPercent(static_cast<double>(b.client_latency.p95()),
                                          static_cast<double>(o.client_latency.p95()));
    const double p99 = ImprovementPercent(static_cast<double>(b.client_latency.p99()),
                                          static_cast<double>(o.client_latency.p99()));
    t.AddRow({FormatDouble(load, 0), FormatDouble(med, 1) + "%", FormatDouble(p95, 1) + "%",
              FormatDouble(p99, 1) + "%", FormatMillis(b.client_latency.p50()),
              FormatMillis(o.client_latency.p50())});
    if (med < prev_median_impr) {
      monotone = false;
    }
    prev_median_impr = med;
  }
  t.Print();
  std::printf("\ngains grow with load: %s\n",
              monotone ? "YES (matches paper)" : "no (see EXPERIMENTS.md)");
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
