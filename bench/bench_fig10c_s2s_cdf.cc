// Figure 10(c): actor-to-actor call latency CDF (game <-> player calls),
// measured at the calling server, baseline vs actor partitioning.
//
// Paper (6K req/s): medians 5 ms -> 3 ms; p99 297 ms -> 56 ms.

#include <cstdio>

#include "bench/halo_common.h"
#include "src/common/flags.h"
#include "src/common/table.h"

namespace actop {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("players", 10000, "concurrent players (paper: 100000)");
  flags.DefineDouble("load", 4500.0, "client requests/sec (paper: 6000)");
  flags.DefineInt("measure-secs", 40, "measurement window");
  flags.DefineInt("seed", 42, "random seed");
  flags.Parse(argc, argv);

  std::printf("== Figure 10(c): actor-to-actor call latency CDF ==\n");
  std::printf("paper reference: medians 5 -> 3 ms; p99 297 -> 56 ms\n\n");

  HaloExperimentConfig base;
  base.players = static_cast<int>(flags.GetInt("players"));
  base.request_rate = flags.GetDouble("load");
  base.measure = Seconds(flags.GetInt("measure-secs"));
  base.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  HaloExperimentConfig opt = base;
  opt.partitioning = true;

  const HaloExperimentResult baseline = RunHaloExperiment(base);
  const HaloExperimentResult actop = RunHaloExperiment(opt);

  Table t({"quantile", "baseline (ms)", "partitioning (ms)"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    t.AddRow({FormatDouble(q, 2),
              FormatMillis(baseline.actor_call_latency.ValueAtQuantile(q)),
              FormatMillis(actop.actor_call_latency.ValueAtQuantile(q))});
  }
  t.Print();

  std::printf("\nmedian: %s -> %s ms; p99: %s -> %s ms\n",
              FormatMillis(baseline.actor_call_latency.p50()).c_str(),
              FormatMillis(actop.actor_call_latency.p50()).c_str(),
              FormatMillis(baseline.actor_call_latency.p99()).c_str(),
              FormatMillis(actop.actor_call_latency.p99()).c_str());
  std::printf("calls measured: baseline %llu, partitioning %llu\n",
              static_cast<unsigned long long>(baseline.actor_call_latency.count()),
              static_cast<unsigned long long>(actop.actor_call_latency.count()));
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
