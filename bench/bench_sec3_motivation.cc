// §3 motivation experiment: the cost of remote inter-actor communication.
//
// Reproduces the paper's Halo Presence measurement: under random placement
// ~90% of actor-to-actor messages are remote and latency suffers; with
// communicating actors co-located (here: after the partitioner converges)
// the same workload runs far faster at lower CPU utilization.
//
// Paper reference (10 servers, 100K players, 6K req/s, 80% CPU):
//   random placement:  median 41 ms, p95 450 ms, p99 736 ms, ~90% remote
//   co-located actors: median 24 ms, p95 100 ms, p99 225 ms

#include <cstdio>

#include "bench/halo_common.h"
#include "src/common/flags.h"
#include "src/common/table.h"

namespace actop {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("players", 10000, "concurrent players (paper: 100000)");
  flags.DefineInt("servers", 8, "cluster size (paper: 10)");
  flags.DefineDouble("load", 4500.0, "client requests/sec (paper: 6000)");
  flags.DefineInt("measure-secs", 40, "measurement window");
  flags.DefineInt("seed", 42, "random seed");
  flags.Parse(argc, argv);

  std::printf("== §3 motivation: remote actor interaction vs co-location ==\n");
  std::printf("paper reference: 41/450/736 ms random vs 24/100/225 ms co-located; ~90%% remote\n\n");

  HaloExperimentConfig base;
  base.players = static_cast<int>(flags.GetInt("players"));
  base.num_servers = static_cast<int>(flags.GetInt("servers"));
  base.request_rate = flags.GetDouble("load");
  base.measure = Seconds(flags.GetInt("measure-secs"));
  base.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  HaloExperimentConfig coloc = base;
  coloc.partitioning = true;

  const HaloExperimentResult random_result = RunHaloExperiment(base);
  const HaloExperimentResult coloc_result = RunHaloExperiment(coloc);

  Table t({"placement", "median(ms)", "p95(ms)", "p99(ms)", "remote msgs", "CPU util"});
  t.AddRow({"random (Orleans default)", FormatMillis(random_result.client_latency.p50()),
            FormatMillis(random_result.client_latency.p95()),
            FormatMillis(random_result.client_latency.p99()),
            FormatPercent(random_result.remote_fraction),
            FormatPercent(random_result.cpu_utilization)});
  t.AddRow({"co-located (converged)", FormatMillis(coloc_result.client_latency.p50()),
            FormatMillis(coloc_result.client_latency.p95()),
            FormatMillis(coloc_result.client_latency.p99()),
            FormatPercent(coloc_result.remote_fraction),
            FormatPercent(coloc_result.cpu_utilization)});
  t.Print();

  std::printf("\nper client request: 18 additional actor-to-actor messages (1+8+8+1)\n");
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
