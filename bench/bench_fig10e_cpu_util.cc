// Figure 10(e): mean CPU utilization across servers, baseline vs actor
// partitioning, at different loads.
//
// Paper (2K/4K/6K req/s): partitioning lowers CPU utilization by 25% at low
// load and by 45% at high load — less serialization work overall.

#include <cstdio>

#include "bench/halo_common.h"
#include "src/common/flags.h"
#include "src/common/table.h"

namespace actop {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("players", 10000, "concurrent players (paper: 100000)");
  flags.DefineDouble("load1", 1500.0, "low load (paper: 2000)");
  flags.DefineDouble("load2", 3000.0, "mid load (paper: 4000)");
  flags.DefineDouble("load3", 4500.0, "high load (paper: 6000)");
  flags.DefineInt("measure-secs", 30, "measurement window per run");
  flags.DefineInt("seed", 42, "random seed");
  flags.Parse(argc, argv);

  std::printf("== Figure 10(e): CPU utilization, baseline vs partitioning ==\n");
  std::printf("paper reference: baseline ~30/55/80%%; partitioning cuts CPU by 25-45%%\n\n");

  Table t({"load (req/s)", "baseline CPU", "partitioning CPU", "reduction"});
  for (double load : {flags.GetDouble("load1"), flags.GetDouble("load2"),
                      flags.GetDouble("load3")}) {
    HaloExperimentConfig base;
    base.players = static_cast<int>(flags.GetInt("players"));
    base.request_rate = load;
    base.measure = Seconds(flags.GetInt("measure-secs"));
    base.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    HaloExperimentConfig opt = base;
    opt.partitioning = true;

    const HaloExperimentResult b = RunHaloExperiment(base);
    const HaloExperimentResult o = RunHaloExperiment(opt);
    t.AddRow({FormatDouble(load, 0), FormatPercent(b.cpu_utilization),
              FormatPercent(o.cpu_utilization),
              FormatDouble(ImprovementPercent(b.cpu_utilization, o.cpu_utilization), 1) + "%"});
  }
  t.Print();
  return 0;
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) { return actop::Main(argc, argv); }
